(** Resumable, content-addressed sweep checkpointing.

    A study is a sweep over (experiment, scenario, replicate-stripe)
    units.  With a store attached, each unit's merged
    {!Ckpt_simulator.Evaluation.partial} is persisted under a key that
    hashes the experiment name, the full scenario parameters, the seed,
    the policy roster and the stripe layout; written atomically
    (tempfile + fsync + rename, {!Ckpt_store.Atomic_file}).  Re-running
    an interrupted study then skips every completed unit and recomputes
    only the missing ones, and — because tables are always reduced
    through the same stripe merge tree — produces bit-identical output.

    Invalidation is by construction: any changed parameter changes the
    key, so stale units are simply never consulted (and two concurrent
    sweeps with different parameters can share a directory without
    collision).  A unit file that exists but fails its header or
    payload check is counted as {e invalidated}, recomputed, and
    overwritten.

    Point the store at a directory with [CKPT_SWEEP_DIR=<dir>] (or
    [ckpt sweep --resume <dir>]); without it every entry point below
    degrades to the plain, storeless computation. *)

type t
(** A sweep store rooted at a directory. *)

val create : dir:string -> t
(** Open (creating as needed) the store at [dir].
    @raise Sys_error when the directory cannot be created. *)

val dir : t -> string

val of_config : Config.t -> t option
(** The store named by the config's [sweep_dir], if any. *)

type stats = { skipped : int; computed : int; invalidated : int }
(** Process-wide unit counters since the last {!reset_stats}: units
    loaded from the store, units computed (and persisted), and unit
    files found corrupt and recomputed.  Mirrored as telemetry
    counters [sweep/units_skipped], [sweep/units_computed],
    [sweep/units_invalidated] when [CKPT_METRICS=1]. *)

val stats : unit -> stats
val reset_stats : unit -> unit

val degradation_table :
  ?store:t ->
  ?params:(string * string) list ->
  experiment:string ->
  scenario:Ckpt_simulator.Scenario.t ->
  policies:Ckpt_policies.Policy.t list ->
  replicates:int ->
  unit ->
  Ckpt_simulator.Evaluation.table
(** {!Ckpt_simulator.Evaluation.degradation_table}, checkpointed per
    replicate stripe when [store] is given; bit-identical to the plain
    call either way.  [experiment] names the study point (distinct
    sweep points of one study must pass distinct names or [params]);
    [params] are extra key/value pairs folded into the unit key and
    recorded in each unit's provenance sidecar. *)

val floats :
  ?store:t ->
  ?params:(string * string) list ->
  experiment:string ->
  scenario:Ckpt_simulator.Scenario.t ->
  replicates:int ->
  f:(int -> float) ->
  unit ->
  float array
(** [Array.init replicates f] evaluated stripe-parallel and, with a
    [store], checkpointed per stripe — for studies whose unit of work
    is a per-replicate scalar rather than a policy table.  [f] must be
    a pure function of the replicate index (plus the scenario, which
    keys the store). *)

val vectors :
  ?store:t ->
  ?params:(string * string) list ->
  experiment:string ->
  scenario:Ckpt_simulator.Scenario.t ->
  replicates:int ->
  width:int ->
  f:(int -> float array) ->
  unit ->
  float array array
(** Like {!floats} but each replicate yields a fixed-width row of
    floats (e.g. a waste decomposition, {!Spares}); [width] is folded
    into the unit key and every row — computed or loaded — is checked
    against it.  Rows round-trip the store bit-exactly (hex floats;
    NaN/inf cells included, so a row of NaNs can mark a failed
    replicate).
    @raise Invalid_argument if [replicates <= 0], [width <= 0], or [f]
    returns a row of a different width. *)
