(** Resumable, content-addressed sweep checkpointing.

    A study is a sweep over (experiment, scenario, replicate-stripe)
    units.  With a store attached, each unit's merged
    {!Ckpt_simulator.Evaluation.partial} is persisted under a key that
    hashes the experiment name, the full scenario parameters, the seed,
    the policy roster and the stripe layout; written atomically
    (tempfile + fsync + rename, {!Ckpt_store.Atomic_file}).  Re-running
    an interrupted study then skips every completed unit and recomputes
    only the missing ones, and — because tables are always reduced
    through the same stripe merge tree — produces bit-identical output.

    Invalidation is by construction: any changed parameter changes the
    key, so stale units are simply never consulted (and two concurrent
    sweeps with different parameters can share a directory without
    collision).  A unit file that exists but fails its header or
    payload check is counted as {e invalidated}, recomputed, and
    overwritten.

    Point the store at a directory with [CKPT_SWEEP_DIR=<dir>] (or
    [ckpt sweep --resume <dir>]); without it every entry point below
    degrades to the plain, storeless computation.

    {2 Multi-process sweeps}

    The store doubles as a coordinator-free distribution substrate
    ([ckpt sweep --workers N], {!Sweep_workers}).  Worker processes run
    the same deterministic experiment enumeration against the shared
    directory in {e worker mode}: a missing unit is computed only after
    winning its {e claim marker} — [<unit>.claim], created O_EXCL with
    a pid/host/timestamp payload; create wins, losers move on and
    substitute a merge-neutral placeholder.  Claims whose owner is dead
    (same-host pid check) or older than [CKPT_SWEEP_CLAIM_TTL] (default
    10 min) are reaped and re-claimed, so a SIGKILLed worker never
    wedges a sweep.  Claims gate only worker-mode compute: loads never
    consult them, the parent's canonical pass ignores them, and unit
    writes are atomic and idempotent under the content key — a reaping
    race at worst duplicates one unit's compute, never corrupts
    output. *)

type t
(** A sweep store rooted at a directory. *)

val create : dir:string -> t
(** Open (creating as needed) the store at [dir].
    @raise Sys_error when the directory cannot be created. *)

val dir : t -> string

val of_config : Config.t -> t option
(** The store named by the config's [sweep_dir], if any. *)

type stats = {
  skipped : int;  (** units loaded from the store *)
  computed : int;  (** units computed and persisted *)
  invalidated : int;  (** unit files found corrupt and recomputed *)
  claimed : int;  (** worker mode: claim markers won *)
  busy : int;  (** worker mode: units skipped, held by a live worker *)
  reaped : int;  (** stale claim markers removed *)
}
(** Process-wide unit counters since the last {!reset_stats}.  Mirrored
    as telemetry counters [sweep/units_skipped], [sweep/units_computed],
    [sweep/units_invalidated], [sweep/claims_won], [sweep/claims_busy],
    [sweep/claims_reaped] when [CKPT_METRICS=1]. *)

val stats : unit -> stats
val reset_stats : unit -> unit

val set_worker_mode : bool -> unit
(** Switch this process into (or out of) worker mode — see the module
    preamble.  Set once by {!Sweep_workers.run_as_worker}; the parent
    process must never enable it, so its final pass computes every
    missing unit regardless of leftover claims. *)

val worker_mode : unit -> bool

(** The claim-marker protocol, exposed for tests and tooling.  Normal
    code never calls these directly: worker-mode entry points claim and
    release internally. *)
module Claim : sig
  val path : string -> string
  (** The claim marker guarding a unit file: [<unit>.claim]. *)

  val ttl : unit -> float
  (** Claim time-to-live in seconds: [CKPT_SWEEP_CLAIM_TTL] when set to
      a non-negative number, 600 otherwise. *)

  val write : path:string -> pid:int -> host:string -> time:float -> unit
  (** Forge a claim marker with an explicit payload (tests use this to
      simulate live, dead and foreign-host workers). *)

  val stale : now:float -> string -> bool
  (** Whether the claim at [path] is reapable at time [now]: its pid is
      dead (same-host claims only) or its age exceeds {!ttl}.  A
      missing file is not stale; an unparsable payload ages from the
      file's mtime. *)
end

type unit_info = {
  u_path : string;
  u_experiment : string;
  u_digest : string;
  u_stripe : int;
}

val units : t -> unit_info list
(** The completed units on disk, sorted by file name.  Progress
    reporting and tooling only — correctness always re-derives the
    unit set from the experiment enumeration. *)

type claim_info = {
  c_path : string;
  c_pid : int option;  (** [None] when the payload is torn/unwritten *)
  c_host : string option;
  c_age : float;  (** seconds since the claim's timestamp (or mtime) *)
  c_stale : bool;
}

val claims : t -> claim_info list
(** Outstanding claim markers, sorted by file name. *)

val reap_claims : ?all:bool -> t -> int
(** Remove stale claim markers (all of them with [~all:true] — only
    safe once every worker has been waited on) and return the count
    removed. *)

val degradation_table :
  ?store:t ->
  ?params:(string * string) list ->
  experiment:string ->
  scenario:Ckpt_simulator.Scenario.t ->
  policies:Ckpt_policies.Policy.t list ->
  replicates:int ->
  unit ->
  Ckpt_simulator.Evaluation.table
(** {!Ckpt_simulator.Evaluation.degradation_table}, checkpointed per
    replicate stripe when [store] is given; bit-identical to the plain
    call either way.  [experiment] names the study point (distinct
    sweep points of one study must pass distinct names or [params]);
    [params] are extra key/value pairs folded into the unit key and
    recorded in each unit's provenance sidecar. *)

val floats :
  ?store:t ->
  ?params:(string * string) list ->
  experiment:string ->
  scenario:Ckpt_simulator.Scenario.t ->
  replicates:int ->
  f:(int -> float) ->
  unit ->
  float array
(** [Array.init replicates f] evaluated stripe-parallel and, with a
    [store], checkpointed per stripe — for studies whose unit of work
    is a per-replicate scalar rather than a policy table.  [f] must be
    a pure function of the replicate index (plus the scenario, which
    keys the store). *)

val vectors :
  ?store:t ->
  ?params:(string * string) list ->
  experiment:string ->
  scenario:Ckpt_simulator.Scenario.t ->
  replicates:int ->
  width:int ->
  f:(int -> float array) ->
  unit ->
  float array array
(** Like {!floats} but each replicate yields a fixed-width row of
    floats (e.g. a waste decomposition, {!Spares}); [width] is folded
    into the unit key and every row — computed or loaded — is checked
    against it.  Rows round-trip the store bit-exactly (hex floats;
    NaN/inf cells included, so a row of NaNs can mark a failed
    replicate).
    @raise Invalid_argument if [replicates <= 0], [width <= 0], or [f]
    returns a row of a different width. *)
