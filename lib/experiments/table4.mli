(** Table 4: average degradation from best (and standard deviation)
    on the full 45,208-processor platform with Weibull (k = 0.7)
    failures, embarrassingly parallel job and fixed checkpoint cost —
    plus Section 5.2.2's spare-processor statistic (failures per
    DPNextFailure run: ~38 average, 66 maximum in the paper). *)

type t = {
  table : Ckpt_simulator.Evaluation.table;
  dp_average_failures : float;
  dp_max_failures : int;
  dp_min_chunk : float;
  dp_max_chunk : float;
      (** the paper reports DPNextFailure varying chunks from 2,984 s
          up to 6,108 s on this platform. *)
}

val run : ?config:Config.t -> unit -> t
val print : ?config:Config.t -> unit -> unit
