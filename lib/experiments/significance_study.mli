(** Paired significance of the paper's headline comparison.

    The paper reports DPNextFailure beating the best periodic
    heuristic "by at least 4.38%" on the largest Petascale platform;
    this study re-states that claim with a paired sign test over
    shared trace sets (DPNextFailure vs OptExp and vs Young), at a
    configurable scale. *)

val run :
  ?config:Config.t -> ?processors:int -> ?shape:float -> unit ->
  Ckpt_simulator.Significance.t list

val print : ?config:Config.t -> unit -> unit
