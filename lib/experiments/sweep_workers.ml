(* Worker-process lifecycle for multi-process sweeps.

   The parent spawns N copies of the current executable (fork + exec,
   never a bare fork: the OCaml 5 runtime cannot be forked once domains
   exist, and `ckpt` has usually started its domain pool by the time a
   sweep is requested).  Each child re-runs the same deterministic
   experiment enumeration against the shared store in worker mode
   (Sweep_store claim markers arbitrate units), writes a stats file,
   and exits.  The parent waits, classifies each exit, reaps any
   leftover claims — every owner is dead by then — and runs the
   canonical serial-order pass itself, which loads every completed unit
   and computes whatever crashed workers left behind.  That final pass,
   not the workers, renders all output, which is why an N-worker sweep
   is byte-identical to --workers 1 by construction. *)

module Atomic_file = Ckpt_store.Atomic_file
module Json = Ckpt_telemetry.Json
module Domain_pool = Ckpt_parallel.Domain_pool

let env_var = "CKPT_SWEEP_WORKER"
let workers_var = "CKPT_SWEEP_WORKERS"

let default_workers () =
  match Sys.getenv_opt workers_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> 1

let worker_index () =
  match Sys.getenv_opt env_var with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

let log_path ~dir ~index = Filename.concat dir (Printf.sprintf "worker-%02d.log" index)

let stats_path ~dir ~index =
  Filename.concat dir (Printf.sprintf "worker-%02d.stats.json" index)

let results_scratch ~dir ~index =
  Filename.concat dir (Printf.sprintf "worker-%02d.results" index)

(* -- the worker side --------------------------------------------------------- *)

let write_stats ~path ~index ~seconds (s : Sweep_store.stats) =
  let field (k, v) = Printf.sprintf "  %S: %s" k v in
  let contents =
    [
      ("index", string_of_int index);
      ("pid", string_of_int (Unix.getpid ()));
      ("seconds", Printf.sprintf "%.6f" seconds);
      ("skipped", string_of_int s.Sweep_store.skipped);
      ("computed", string_of_int s.Sweep_store.computed);
      ("invalidated", string_of_int s.Sweep_store.invalidated);
      ("claimed", string_of_int s.Sweep_store.claimed);
      ("busy", string_of_int s.Sweep_store.busy);
      ("reaped", string_of_int s.Sweep_store.reaped);
    ]
    |> List.map field |> String.concat ",\n"
  in
  Atomic_file.write ~path ("{\n" ^ contents ^ "\n}\n")

let run_as_worker ~store ~index f =
  Sweep_store.set_worker_mode true;
  Sweep_store.reset_stats ();
  let t0 = Unix.gettimeofday () in
  (* Re-pass while the previous pass both computed something and found
     units busy elsewhere: a repeat pass is cheap (completed units just
     load) and picks up units freed since — tail rebalancing without
     polling.  If a pass computes nothing, whoever holds the remaining
     busy units is live and will finish them (or die and leave them to
     the parent), so exiting is safe. *)
  let rec pass () =
    let before = Sweep_store.stats () in
    f ();
    let after = Sweep_store.stats () in
    let computed = after.Sweep_store.computed - before.Sweep_store.computed in
    let busy = after.Sweep_store.busy - before.Sweep_store.busy in
    if computed > 0 && busy > 0 then pass ()
  in
  let finish () =
    write_stats
      ~path:(stats_path ~dir:(Sweep_store.dir store) ~index)
      ~index
      ~seconds:(Unix.gettimeofday () -. t0)
      (Sweep_store.stats ())
  in
  match pass () with
  | () -> finish ()
  | exception e ->
      (* Leave a stats file even on the way down: the parent reports the
         partial counts next to the crash. *)
      (try finish () with _ -> ());
      raise e

(* -- the parent side --------------------------------------------------------- *)

type outcome = Finished | Failed of int | Signaled of int

let outcome_of_status = function
  | Unix.WEXITED 0 -> Finished
  | Unix.WEXITED n -> Failed n
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Signaled s

type result = {
  r_index : int;
  r_pid : int;
  r_outcome : outcome;
  r_seconds : float;
  r_stats : Sweep_store.stats option;
}

type summary = {
  workers : result list;
  crashed : int;
  claims_reaped : int;  (** leftover claims removed after all exits *)
}

let env_with overrides =
  let names = List.map fst overrides in
  let keep entry =
    match String.index_opt entry '=' with
    | Some i -> not (List.mem (String.sub entry 0 i) names)
    | None -> true
  in
  Array.append
    (Array.of_seq
       (Seq.filter keep (Array.to_seq (Unix.environment ()))))
    (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) overrides))

let read_stats path =
  match Atomic_file.read path with
  | None -> None
  | Some contents -> (
      match Json.parse contents with
      | Error _ -> None
      | Ok json ->
          let int k =
            match Option.bind (Json.member json k) Json.to_float with
            | Some f -> int_of_float f
            | None -> 0
          in
          Some
            ( {
                Sweep_store.skipped = int "skipped";
                computed = int "computed";
                invalidated = int "invalidated";
                claimed = int "claimed";
                busy = int "busy";
                reaped = int "reaped";
              },
              match Option.bind (Json.member json "seconds") Json.to_float with
              | Some s -> s
              | None -> 0. ))

let launch ~store ~workers ~exe ~args ?(progress = fun ~alive:_ ~units:_ -> ()) () =
  if workers < 1 then invalid_arg "Sweep_workers.launch: workers must be >= 1";
  let dir = Sweep_store.dir store in
  (* Split the domain budget so N workers on one host do not multiply
     the domain count: each worker sees CKPT_DOMAINS = max 1 (total/N).
     An explicit CKPT_DOMAINS override is divided the same way. *)
  let per_worker = max 1 (Domain_pool.recommended_domains () / workers) in
  let spawn index =
    let log = log_path ~dir ~index in
    let scratch = results_scratch ~dir ~index in
    Atomic_file.mkdir_p scratch;
    Atomic_file.remove (stats_path ~dir ~index);
    let env =
      env_with
        [
          (env_var, string_of_int index);
          ("CKPT_DOMAINS", string_of_int per_worker);
          (* Workers re-run the full study code, including its CSV
             writers, against placeholder-polluted in-process tables;
             their output goes to a scratch directory (and their chatter
             to the log file) so only the parent's canonical pass writes
             user-visible artifacts. *)
          ("CKPT_RESULTS_DIR", scratch);
        ]
    in
    let fd = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    let pid =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> Unix.create_process_env exe args env Unix.stdin fd fd)
    in
    (index, pid, Unix.gettimeofday ())
  in
  let running = ref (List.init workers spawn) in
  let finished = ref [] in
  let last_units = ref (-1) in
  while !running <> [] do
    let still = ref [] in
    List.iter
      (fun (index, pid, t0) ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> still := (index, pid, t0) :: !still
        | _, status ->
            let seconds = Unix.gettimeofday () -. t0 in
            finished := (index, pid, status, seconds) :: !finished)
      !running;
    running := List.rev !still;
    if !running <> [] then begin
      let units = List.length (Sweep_store.units store) in
      if units <> !last_units then begin
        last_units := units;
        progress ~alive:(List.length !running) ~units
      end;
      Unix.sleepf 0.2
    end
  done;
  let results =
    !finished
    |> List.map (fun (index, pid, status, seconds) ->
           let stats, stats_seconds =
             match read_stats (stats_path ~dir ~index) with
             | Some (s, secs) -> (Some s, secs)
             | None -> (None, 0.)
           in
           {
             r_index = index;
             r_pid = pid;
             r_outcome = outcome_of_status status;
             r_seconds = (if stats_seconds > 0. then stats_seconds else seconds);
             r_stats = stats;
           })
    |> List.sort (fun a b -> compare a.r_index b.r_index)
  in
  let crashed =
    List.length (List.filter (fun r -> r.r_outcome <> Finished) results)
  in
  (* Every worker has been waited on, so any claim left in the store is
     a straggler from a crash: remove them all.  (The parent's own pass
     would ignore them anyway — this keeps the store clean and makes
     the crash visible in the reaped counter.) *)
  let claims_reaped = Sweep_store.reap_claims ~all:true store in
  { workers = results; crashed; claims_reaped }
