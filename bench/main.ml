(* Benchmark harness.

   Three stages:

   1. Regenerate every paper table and figure (scaled-down replicate
      counts; control with CKPT_TRACES / CKPT_FULL), printing the same
      rows/series the paper reports.  Skip with CKPT_SKIP_EXPERIMENTS=1.

   2. A Bechamel micro-benchmark suite: one Test.make per paper
      artifact, timing the computational kernel that artifact leans on
      (plus the core simulator/DP kernels), at miniature scale so the
      whole suite completes in seconds.  Skip with CKPT_SKIP_MICRO=1.

   3. An evaluation-throughput benchmark (replicates/second of
      [Evaluation.degradation_table] on a small Weibull table, serial
      vs parallel), written to BENCH_eval.json so successive PRs can
      track the trajectory.  The new throughput is compared against
      the committed BENCH_eval.json: a drop beyond 2% is reported, and
      fails the run under CKPT_BENCH_ASSERT=1 (tracing stays disabled
      here, so this doubles as the telemetry zero-overhead check).
      Skip with CKPT_SKIP_EVAL_BENCH=1.

   4. A telemetry benchmark: the same engine run with tracing off vs
      on (per-run ring buffer), reporting events/second and the
      relative overhead, written to BENCH_telemetry.json.  Skip with
      CKPT_SKIP_TELEMETRY_BENCH=1.

   5. A solver hot-path benchmark: end-to-end DPNextFailure engine
      throughput (runs/s, decisions/run from the metrics registry,
      microseconds per planning decision), one representative solve
      pruned vs unpruned, Age_summary.build vs Incremental.summarize,
      and a DPMakespan solve, written to BENCH_solver.json.  The run
      throughput is compared against the previous BENCH_solver.json
      (no-regression) or, on first run, against the committed
      BENCH_telemetry.json tracing-off figure (the pre-optimization
      engine, where the PR's >= 3x claim is enforced); failures only
      abort under CKPT_BENCH_ASSERT=1.  Skip with
      CKPT_SKIP_SOLVER_BENCH=1.

   6. A scheduler benchmark: a nested study x replicate workload (a
      skewed processor-count sweep whose points each evaluate a
      replicate table) timed under the flat per-call pool vs the
      persistent work-stealing scheduler over CKPT_DOMAINS in
      {1,2,4,8}, written to BENCH_sched.json.  Every run's tables must
      be bit-identical to the sequential reference; under
      CKPT_BENCH_ASSERT=1 the nested workload must additionally beat
      the flat pool by >= 1.5x at >= 4 domains (only meaningful on a
      machine with >= 4 cores).  Skip with CKPT_SKIP_SCHED_BENCH=1.

   7. An engine benchmark: the same replicate x policy workload driven
      through the scalar engine (one [Engine.run] per replicate) vs the
      batch lockstep engine ([Engine.run_stripe] per stripe), at p in
      {1024, 16384} on a single domain, written to BENCH_engine.json.
      The two arms must produce bit-identical outcomes; under
      CKPT_BENCH_ASSERT=1 the batch engine must additionally beat the
      scalar one by >= 2x replicate throughput at p = 16384.
      CKPT_BENCH_SMOKE=1 shrinks the replicate count for CI.  Skip
      with CKPT_SKIP_ENGINE_BENCH=1.

   8. A sweep-worker benchmark: `ckpt sweep --workers N` on the
      sweep-smoke study at N in {1, 2, 4} over fresh stores, reporting
      units/second and the speedup over one worker, written to
      BENCH_sweep.json with the physical core count recorded.  Every
      N's CSV output must be byte-identical to N = 1; points with more
      workers than cores are flagged oversubscribed and never verify
      the speedup target, and under CKPT_BENCH_ASSERT=1 an
      unverifiable target (or a miss) fails the run, stage-6-style.
      CKPT_BENCH_SMOKE=1 shrinks the workload.  Skip with
      CKPT_SKIP_SWEEP_BENCH=1.

   Every BENCH_*.json gains a provenance sidecar (<file>.meta.json). *)

open Bechamel
open Toolkit
module D = Ckpt_distributions
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module F = Ckpt_failures
module C = Ckpt_core
module E = Ckpt_experiments
module T = Ckpt_telemetry

(* -- stage 1: regenerate the paper ---------------------------------------- *)

let experiments_config () =
  let c = E.Config.default () in
  if c.E.Config.replicates > 0 || c.E.Config.full then c
  else { c with E.Config.replicates = 5 }

let run_experiments () =
  let config = experiments_config () in
  Printf.printf "Regenerating every table/figure (%d traces per configuration)\n"
    (E.Config.scale config ~quick:5 ~full:600);
  Printf.printf "(set CKPT_TRACES / CKPT_FULL=1 to rescale; the paper uses 600)\n%!";
  E.Registry.run_all config

(* -- stage 2: micro-benchmarks ---------------------------------------------- *)

(* Shared miniature fixtures, built once outside the timed closures. *)

let weibull = D.Weibull.of_mtbf ~mtbf:(P.Units.of_years 125.) ~shape:0.7
let exponential = D.Exponential.of_mtbf ~mtbf:(P.Units.of_years 125.)

let mini_machine p =
  P.Machine.create ~total_processors:p ~downtime:60. ~overhead:(P.Overhead.constant 600.)

let mini_job ~dist ~processors =
  Po.Job.create ~dist ~processors ~machine:(mini_machine processors)
    ~work_time:(P.Units.of_years 1000. /. float_of_int processors)

let sequential_job =
  Po.Job.create
    ~dist:(D.Exponential.of_mtbf ~mtbf:P.Units.day)
    ~processors:1 ~machine:(mini_machine 1) ~work_time:(P.Units.of_days 20.)

let sequential_scenario = S.Scenario.create sequential_job
let sequential_traces = S.Scenario.traces sequential_scenario ~replicate:0

let peta_exp_job = mini_job ~dist:exponential ~processors:2048
let peta_exp_scenario = S.Scenario.create peta_exp_job
let peta_exp_traces = S.Scenario.traces peta_exp_scenario ~replicate:0

let peta_weib_job = mini_job ~dist:weibull ~processors:2048
let peta_weib_scenario = S.Scenario.create peta_weib_job
let peta_weib_traces = S.Scenario.traces peta_weib_scenario ~replicate:0

let lanl_log = F.Lanl_synth.generate F.Lanl_synth.cluster19_parameters
let lanl_dist = F.Failure_log.to_distribution lanl_log

let lanl_job =
  Po.Job.with_group_size
    (Po.Job.create ~dist:lanl_dist ~processors:4096 ~machine:(mini_machine 4096)
       ~work_time:P.Units.day)
    F.Lanl_synth.node_group_size

let lanl_scenario = S.Scenario.create lanl_job
let lanl_traces = S.Scenario.traces lanl_scenario ~replicate:0

let jaguar_ages =
  let rng = Ckpt_prng.Rng.create ~seed:1L in
  Array.init P.Presets.jaguar_processors (fun _ ->
      Ckpt_prng.Rng.uniform rng *. P.Units.of_years 1.)

let run_once ~scenario ~traces ~policy =
  match S.Engine.run ~scenario ~traces ~policy with
  | S.Engine.Completed m -> m.S.Engine.makespan
  | S.Engine.Policy_failed _ -> nan

let dpnf_plan job ages =
  let context = Po.Job.dp_context job ~platform_view:false in
  let summary =
    C.Age_summary.build context.C.Dp_context.dist
      ~processors:(Array.length ages)
      ~iter_ages:(fun f -> Array.iter f ages)
  in
  C.Dp_next_failure.solve ~context ~ages:summary ~work:job.Po.Job.work_time ()

let stage name f = Test.make ~name (Staged.stage f)

(* One bench per paper artifact: the kernel that dominates its cost. *)
let artifact_tests =
  Test.make_grouped ~name:"artifacts"
    [
      stage "fig1/platform-mtbf-series" (fun () ->
          F.Rejuvenation.figure1_series ~mtbf:(P.Units.of_years 125.) ~shape:0.7 ~downtime:60.
            ~processor_exponents:[ 4; 8; 12; 16; 20 ]);
      stage "table2/sequential-exponential-run" (fun () ->
          run_once ~scenario:sequential_scenario ~traces:sequential_traces
            ~policy:(Po.Optexp.policy sequential_job));
      stage "table3/sequential-dpmakespan-solve" (fun () ->
          let context = Po.Job.dp_context sequential_job ~platform_view:false in
          C.Dp_makespan.solve ~cap_states:300 ~context ~work:sequential_job.Po.Job.work_time
            ~initial_age:0. ());
      stage "fig2/petascale-exponential-run" (fun () ->
          run_once ~scenario:peta_exp_scenario ~traces:peta_exp_traces
            ~policy:(Po.Optexp.policy peta_exp_job));
      stage "fig3/exascale-trace-generation" (fun () ->
          F.Trace_set.generate ~seed:2L ~replicate:0 exponential ~processors:16384
            ~horizon:(P.Units.of_years 11.));
      stage "fig4/petascale-weibull-dpnf-run" (fun () ->
          run_once ~scenario:peta_weib_scenario ~traces:peta_weib_traces
            ~policy:(Po.Dp_policies.dp_next_failure peta_weib_job));
      stage "fig5/dpnf-plan-small-shape" (fun () ->
          let dist = D.Weibull.of_mtbf ~mtbf:(P.Units.of_years 125.) ~shape:0.5 in
          let job = mini_job ~dist ~processors:2048 in
          dpnf_plan job (Array.sub jaguar_ages 0 2048));
      stage "fig6/exascale-platform-distribution" (fun () ->
          D.Distribution.min_of_iid weibull (1 lsl 20));
      stage "fig7/logbased-empirical-psuc" (fun () ->
          let acc = ref 0. in
          for i = 1 to 1000 do
            acc :=
              !acc
              +. D.Distribution.conditional_survival lanl_dist
                   ~age:(float_of_int i *. 3600.)
                   ~duration:600.
          done;
          !acc);
      stage "table4/age-summary-45208" (fun () ->
          C.Age_summary.build weibull ~processors:(Array.length jaguar_ages)
            ~iter_ages:(fun f -> Array.iter f jaguar_ages));
      stage "fig8/period-sweep-point" (fun () ->
          run_once ~scenario:sequential_scenario ~traces:sequential_traces
            ~policy:(Po.Policy.periodic "sweep" ~period:(2. *. Po.Young.period sequential_job)));
      stage "fig9/weibull-sequential-run" (fun () ->
          let job =
            Po.Job.create
              ~dist:(D.Weibull.of_mtbf ~mtbf:P.Units.day ~shape:0.7)
              ~processors:1 ~machine:(mini_machine 1) ~work_time:(P.Units.of_days 20.)
          in
          let scenario = S.Scenario.create job in
          let traces = S.Scenario.traces scenario ~replicate:0 in
          run_once ~scenario ~traces ~policy:(Po.Young.policy job));
      stage "grid/amdahl-workload-model" (fun () ->
          let w =
            P.Workload.create ~total_work:(P.Units.of_years 1000.)
              ~model:(P.Workload.Amdahl 1e-6)
          in
          let acc = ref 0. in
          for p = 1 to 4096 do
            acc := !acc +. P.Workload.parallel_time w ~processors:p
          done;
          !acc);
      stage "fig98/optexp-periods-all-models" (fun () ->
          List.map
            (fun model ->
              let w = P.Workload.create ~total_work:(P.Units.of_years 1000.) ~model in
              let job =
                Po.Job.of_workload ~dist:exponential ~processors:2048
                  ~machine:(mini_machine 2048) ~workload:w
              in
              Po.Optexp.period job)
            (P.Workload.all_paper_models ()));
      stage "fig99/dpnf-plan-jaguar-ages" (fun () ->
          dpnf_plan peta_weib_job (Array.sub jaguar_ages 0 2048));
      stage "fig100/logbased-engine-run" (fun () ->
          run_once ~scenario:lanl_scenario ~traces:lanl_traces ~policy:(Po.Daly.high lanl_job));
      stage "ablation/age-summary-nexact40" (fun () ->
          C.Age_summary.build ~nexact:40 weibull ~processors:(Array.length jaguar_ages)
            ~iter_ages:(fun f -> Array.iter f jaguar_ages));
      stage "energy/metrics-accounting" (fun () ->
          match
            S.Engine.run ~scenario:peta_exp_scenario ~traces:peta_exp_traces
              ~policy:(Po.Young.policy peta_exp_job)
          with
          | S.Engine.Completed m -> S.Energy.of_metrics S.Energy.default_power ~processors:2048 m
          | S.Engine.Policy_failed _ -> nan);
      stage "replication/lower-bound-run" (fun () ->
          S.Engine.lower_bound ~scenario:peta_weib_scenario ~traces:peta_weib_traces);
    ]

(* Core kernels underneath everything. *)
let kernel_tests =
  Test.make_grouped ~name:"kernels"
    [
      stage "lambert-w0" (fun () -> Ckpt_numerics.Lambert_w.w0 (-0.2));
      stage "theorem1-chunk-count" (fun () ->
          C.Theory.optimal_chunk_count
            ~rate:(1. /. P.Units.day)
            ~work:(P.Units.of_days 20.) ~checkpoint:600.);
      stage "weibull-sample-1k" (fun () ->
          let rng = Ckpt_prng.Rng.create ~seed:3L in
          let acc = ref 0. in
          for _ = 1 to 1000 do
            acc := !acc +. weibull.D.Distribution.sample rng
          done;
          !acc);
      stage "weibull-conditional-survival" (fun () ->
          D.Distribution.conditional_survival weibull ~age:3e7 ~duration:1e4);
      stage "expected-tlost-weibull" (fun () ->
          D.Distribution.expected_tlost weibull ~age:3e7 ~window:1e4);
      stage "trace-generation-1024" (fun () ->
          F.Trace_set.generate ~seed:4L ~replicate:0 weibull ~processors:1024
            ~horizon:(P.Units.of_years 11.));
      stage "engine-run-petascale" (fun () ->
          run_once ~scenario:peta_weib_scenario ~traces:peta_weib_traces
            ~policy:(Po.Young.policy peta_weib_job));
      stage "dpnf-solve-default" (fun () ->
          dpnf_plan peta_weib_job (Array.sub jaguar_ages 0 2048));
      stage "dpmakespan-solve-small" (fun () ->
          let context = Po.Job.dp_context sequential_job ~platform_view:false in
          C.Dp_makespan.solve ~cap_states:100 ~context ~work:(P.Units.of_days 20.)
            ~initial_age:0. ());
      stage "bouguerra-period-search" (fun () -> Po.Bouguerra.period peta_weib_job);
    ]

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:32 ~quota:(Time.second 0.25) ~stabilize:false ~kde:(Some 32) ()
  in
  Benchmark.all cfg instances tests

let analyze results =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = Analyze.all ols Instance.monotonic_clock results in
  Analyze.merge ols Instance.[ monotonic_clock ] [ results ]

let () =
  Bechamel_notty.Unit.add Instance.monotonic_clock (Measure.unit Instance.monotonic_clock)

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results

open Notty_unix

let run_micro () =
  print_endline "\n=== Bechamel micro-benchmarks (one per artifact + core kernels) ===";
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  List.iter
    (fun tests ->
      let results = analyze (benchmark tests) in
      img (window, results) |> eol |> output_image)
    [ artifact_tests; kernel_tests ]

(* -- stage 3: evaluation throughput ----------------------------------------- *)

let with_domains n f =
  let previous = Sys.getenv_opt "CKPT_DOMAINS" in
  Unix.putenv "CKPT_DOMAINS" (string_of_int n);
  Fun.protect f ~finally:(fun () ->
      Unix.putenv "CKPT_DOMAINS" (match previous with Some v -> v | None -> ""))

let eval_bench_replicates = 64

(* Big enough that a replicate costs tens of milliseconds (trace
   generation + three policy runs + the omniscient bound), so the
   domain fan-out dominates its startup cost on multicore hosts. *)
let eval_bench_processors = 16384

(* One timed table.  A fresh scenario per measurement keeps the
   trace-set cache cold, so serial and parallel runs do the same
   work. *)
let timed_eval_table ~domains =
  let job = mini_job ~dist:weibull ~processors:eval_bench_processors in
  let scenario = S.Scenario.create job in
  let policies = [ Po.Young.policy job; Po.Daly.high job; Po.Optexp.policy job ] in
  with_domains domains (fun () ->
      let t0 = Unix.gettimeofday () in
      let table =
        S.Evaluation.degradation_table ~scenario ~policies ~replicates:eval_bench_replicates
      in
      (table, Unix.gettimeofday () -. t0))

(* The committed BENCH_*.json artifacts carry the previous PR's
   numbers; recover one top-level field through the real JSON parser
   (the old substring scan broke on any field whose name was a suffix
   of another). *)
let previous_json_field ~path ~field =
  match Ckpt_store.Atomic_file.read path with
  | None -> None
  | Some contents -> (
      match T.Json.parse contents with
      | Error _ -> None
      | Ok j -> Option.bind (T.Json.member j field) T.Json.to_float)

let write_bench_json ~path ~meta contents =
  Ckpt_store.Atomic_file.write ~path contents;
  T.Provenance.write_sidecar ~extra:meta ~path ();
  Printf.printf "wrote %s (and %s)\n%!" path (T.Provenance.sidecar_path path)

let run_eval_bench () =
  Printf.printf
    "\n=== Evaluation throughput (%d-replicate Weibull table, %d processors) ===\n%!"
    eval_bench_replicates eval_bench_processors;
  let previous =
    previous_json_field ~path:"BENCH_eval.json" ~field:"parallel_replicates_per_sec"
  in
  let domains = Ckpt_parallel.Domain_pool.recommended_domains () in
  let serial_table, serial_s = timed_eval_table ~domains:1 in
  let parallel_table, parallel_s = timed_eval_table ~domains in
  let throughput s = float_of_int eval_bench_replicates /. s in
  let speedup = serial_s /. parallel_s in
  Printf.printf "serial   (1 domain):   %7.2f s  %7.2f replicates/s\n" serial_s
    (throughput serial_s);
  Printf.printf "parallel (%d domains): %7.2f s  %7.2f replicates/s  (speedup %.2fx)\n" domains
    parallel_s (throughput parallel_s) speedup;
  Printf.printf "deterministic: %s\n%!"
    (if serial_table = parallel_table then "parallel table == serial table"
     else "MISMATCH between serial and parallel tables");
  if serial_table <> parallel_table then exit 1;
  (* Telemetry must cost nothing when off: tracing/metrics are
     disabled here, so a throughput drop beyond 2% against the
     committed baseline is a regression.  Wall-clock baselines from
     other machines are noisy, so the comparison is reported always
     but only enforced under CKPT_BENCH_ASSERT=1. *)
  (match previous with
  | Some prev when prev > 0. ->
      let ratio = throughput parallel_s /. prev in
      Printf.printf "vs committed BENCH_eval.json: %.1f%% of previous throughput (%.2f/s)\n%!"
        (100. *. ratio) prev;
      if ratio < 0.98 then
        if Sys.getenv_opt "CKPT_BENCH_ASSERT" = Some "1" then begin
          Printf.eprintf "FAIL: throughput dropped more than 2%% below the baseline\n%!";
          exit 1
        end
        else
          Printf.printf
            "WARNING: more than 2%% below the baseline (set CKPT_BENCH_ASSERT=1 to enforce)\n%!"
  | Some _ | None -> Printf.printf "no previous BENCH_eval.json baseline to compare against\n%!");
  write_bench_json ~path:"BENCH_eval.json"
    ~meta:[ ("bench", "evaluation-throughput") ]
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"evaluation-throughput\",\n\
       \  \"replicates\": %d,\n\
       \  \"processors\": %d,\n\
       \  \"policies\": 3,\n\
       \  \"distribution\": \"weibull(k=0.7)\",\n\
       \  \"domains\": %d,\n\
       \  \"serial_seconds\": %.6f,\n\
       \  \"parallel_seconds\": %.6f,\n\
       \  \"serial_replicates_per_sec\": %.3f,\n\
       \  \"parallel_replicates_per_sec\": %.3f,\n\
       \  \"speedup\": %.3f,\n\
       \  \"deterministic\": true\n\
        }\n"
       eval_bench_replicates eval_bench_processors domains serial_s parallel_s
       (throughput serial_s) (throughput parallel_s) speedup)

(* -- stage 4: telemetry overhead -------------------------------------------- *)

let telemetry_bench_runs = 32

let run_telemetry_bench () =
  Printf.printf "\n=== Telemetry (engine run with tracing off vs on, %d runs each) ===\n%!"
    telemetry_bench_runs;
  let policy = Po.Dp_policies.dp_next_failure peta_weib_job in
  let scenario = peta_weib_scenario and traces = peta_weib_traces in
  (* Warm both paths (DP tables, allocator) outside the timed loops. *)
  ignore (S.Engine.run ~scenario ~traces ~policy);
  let timed f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to telemetry_bench_runs do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let off_s = timed (fun () -> ignore (S.Engine.run ~scenario ~traces ~policy)) in
  let events = ref 0 in
  let on_s =
    timed (fun () ->
        let buf = T.Tracer.create_buffer ~name:"bench" () in
        ignore (S.Engine.run_traced ~trace:buf ~scenario ~traces ~policy);
        events := !events + T.Tracer.length buf + T.Tracer.dropped buf)
  in
  let events_per_sec = float_of_int !events /. on_s in
  let overhead_pct = 100. *. ((on_s /. off_s) -. 1.) in
  Printf.printf "tracing off: %8.4f s   tracing on: %8.4f s   overhead %+.1f%%\n" off_s on_s
    overhead_pct;
  Printf.printf "%d events captured, %.3g events/s\n%!" !events events_per_sec;
  write_bench_json ~path:"BENCH_telemetry.json"
    ~meta:[ ("bench", "telemetry-overhead") ]
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"telemetry-overhead\",\n\
       \  \"runs\": %d,\n\
       \  \"processors\": %d,\n\
       \  \"policy\": \"DPNextFailure\",\n\
       \  \"distribution\": \"weibull(k=0.7)\",\n\
       \  \"tracing_off_seconds\": %.6f,\n\
       \  \"tracing_on_seconds\": %.6f,\n\
       \  \"tracing_overhead_percent\": %.2f,\n\
       \  \"events\": %d,\n\
       \  \"events_per_sec\": %.1f\n\
        }\n"
       telemetry_bench_runs eval_bench_processors off_s on_s overhead_pct !events
       events_per_sec)

(* -- stage 5: solver hot path ------------------------------------------------ *)

let solver_bench_runs = 16

let timed_mean n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int n

(* Read before stages 3-4 run: they overwrite the committed files the
   comparison is against. *)
let solver_baselines () =
  let previous = previous_json_field ~path:"BENCH_solver.json" ~field:"dpnf_runs_per_sec" in
  let telemetry_baseline =
    match previous_json_field ~path:"BENCH_telemetry.json" ~field:"tracing_off_seconds" with
    | Some s when s > 0. -> Some (float_of_int telemetry_bench_runs /. s)
    | Some _ | None -> None
  in
  (previous, telemetry_baseline)

let run_solver_bench ~baselines:(previous, telemetry_baseline) () =
  Printf.printf "\n=== Solver hot path (DPNextFailure / DPMakespan, %d engine runs) ===\n%!"
    solver_bench_runs;
  let policy = Po.Dp_policies.dp_next_failure peta_weib_job in
  let scenario = peta_weib_scenario and traces = peta_weib_traces in
  (* Warm the trace cache and allocator outside the timed loop, and
     count planning decisions per run via the metrics registry. *)
  let was_enabled = T.Metrics.enabled () in
  T.Metrics.set_enabled true;
  T.Metrics.reset ~prefix:"dp_next_failure/" ();
  ignore (S.Engine.run ~scenario ~traces ~policy);
  let counter name =
    match T.Metrics.find name with Some (T.Metrics.Counter n) -> n | _ -> 0
  in
  let decisions_per_run = counter "dp_next_failure/solves" in
  let candidates_per_run = counter "dp_next_failure/candidates_scanned" in
  T.Metrics.set_enabled was_enabled;
  let run_s =
    timed_mean solver_bench_runs (fun () -> ignore (S.Engine.run ~scenario ~traces ~policy))
  in
  let runs_per_sec = 1. /. run_s in
  let us_per_decision = 1e6 *. run_s /. float_of_int (max 1 decisions_per_run) in
  Printf.printf "engine run: %.2f runs/s, %d decisions/run, %.1f us/decision\n%!" runs_per_sec
    decisions_per_run us_per_decision;
  (* One representative planning instance, pruned vs unpruned. *)
  let context = Po.Job.dp_context peta_weib_job ~platform_view:false in
  let ages = Array.sub jaguar_ages 0 2048 in
  let summary =
    C.Age_summary.build context.C.Dp_context.dist ~processors:(Array.length ages)
      ~iter_ages:(fun f -> Array.iter f ages)
  in
  let solve prune =
    ignore
      (C.Dp_next_failure.solve ~prune ~context ~ages:summary
         ~work:peta_weib_job.Po.Job.work_time ())
  in
  let pruned_ms = 1e3 *. timed_mean 20 (fun () -> solve true) in
  let unpruned_ms = 1e3 *. timed_mean 20 (fun () -> solve false) in
  Printf.printf "solve: pruned %.3f ms, unpruned %.3f ms (%.2fx)\n%!" pruned_ms unpruned_ms
    (unpruned_ms /. pruned_ms);
  (* Age bookkeeping: O(p) rebuild vs the engine's incremental path. *)
  let births =
    Array.init eval_bench_processors (fun i -> float_of_int ((i * 7919) mod 97) *. 1e4)
  in
  let incremental = C.Age_summary.Incremental.create ~births in
  let dist = context.C.Dp_context.dist in
  let now = 2e6 in
  let build_us =
    1e6
    *. timed_mean 50 (fun () ->
           ignore
             (C.Age_summary.build dist ~processors:eval_bench_processors
                ~iter_ages:(fun f -> Array.iter (fun b -> f (now -. b)) births)))
  in
  let summarize_us =
    1e6
    *. timed_mean 50 (fun () -> ignore (C.Age_summary.Incremental.summarize incremental dist ~now))
  in
  Printf.printf "age summary (p=%d): build %.1f us, incremental summarize %.1f us (%.1fx)\n%!"
    eval_bench_processors build_us summarize_us (build_us /. summarize_us);
  let seq_context = Po.Job.dp_context sequential_job ~platform_view:false in
  let dpm_ms =
    1e3
    *. timed_mean 10 (fun () ->
           ignore
             (C.Dp_makespan.solve ~cap_states:300 ~context:seq_context
                ~work:sequential_job.Po.Job.work_time ~initial_age:0. ()))
  in
  Printf.printf "dpmakespan solve (flat memo): %.3f ms\n%!" dpm_ms;
  let assert_enabled = Sys.getenv_opt "CKPT_BENCH_ASSERT" = Some "1" in
  let baseline_source, baseline_runs_per_sec =
    match (previous, telemetry_baseline) with
    | Some prev, _ when prev > 0. -> ("BENCH_solver.json", prev)
    | None, Some base when base > 0. -> ("BENCH_telemetry.json", base)
    | _ -> ("none", 0.)
  in
  let vs_baseline = if baseline_runs_per_sec > 0. then runs_per_sec /. baseline_runs_per_sec else 0. in
  (match baseline_source with
  | "BENCH_solver.json" ->
      Printf.printf "vs committed BENCH_solver.json: %.1f%% of previous throughput (%.2f runs/s)\n%!"
        (100. *. vs_baseline) baseline_runs_per_sec;
      if vs_baseline < 0.98 then
        if assert_enabled then begin
          Printf.eprintf "FAIL: DPNF run throughput dropped more than 2%% below the baseline\n%!";
          exit 1
        end
        else
          Printf.printf
            "WARNING: more than 2%% below the baseline (set CKPT_BENCH_ASSERT=1 to enforce)\n%!"
  | "BENCH_telemetry.json" ->
      Printf.printf
        "vs committed BENCH_telemetry.json (pre-optimization engine): %.2fx run throughput\n%!"
        vs_baseline;
      if vs_baseline < 3. then
        if assert_enabled then begin
          Printf.eprintf "FAIL: DPNF run throughput below the 3x optimization target\n%!";
          exit 1
        end
        else Printf.printf "WARNING: below the 3x target (set CKPT_BENCH_ASSERT=1 to enforce)\n%!"
  | _ -> Printf.printf "no committed baseline to compare against\n%!");
  write_bench_json ~path:"BENCH_solver.json"
    ~meta:[ ("bench", "solver-hot-path") ]
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"solver-hot-path\",\n\
       \  \"engine_runs\": %d,\n\
       \  \"processors\": 2048,\n\
       \  \"policy\": \"DPNextFailure\",\n\
       \  \"distribution\": \"weibull(k=0.7)\",\n\
       \  \"dpnf_runs_per_sec\": %.3f,\n\
       \  \"dpnf_decisions_per_run\": %d,\n\
       \  \"dpnf_us_per_decision\": %.2f,\n\
       \  \"dpnf_candidates_per_run\": %d,\n\
       \  \"dpnf_solve_pruned_ms\": %.4f,\n\
       \  \"dpnf_solve_unpruned_ms\": %.4f,\n\
       \  \"dpnf_prune_speedup\": %.3f,\n\
       \  \"age_summary_build_us\": %.2f,\n\
       \  \"age_summary_incremental_us\": %.2f,\n\
       \  \"age_summary_processors\": %d,\n\
       \  \"dpm_solve_ms\": %.4f,\n\
       \  \"baseline_source\": \"%s\",\n\
       \  \"baseline_runs_per_sec\": %.3f,\n\
       \  \"vs_baseline_speedup\": %.3f\n\
        }\n"
       solver_bench_runs runs_per_sec decisions_per_run us_per_decision candidates_per_run
       pruned_ms unpruned_ms
       (unpruned_ms /. pruned_ms)
       build_us summarize_us eval_bench_processors dpm_ms baseline_source baseline_runs_per_sec
       vs_baseline)

(* -- stage 6: nested scheduler --------------------------------------------- *)

let with_env key value f =
  let previous = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect f ~finally:(fun () ->
      Unix.putenv key (match previous with Some v -> v | None -> ""))

(* A deliberately skewed study x replicate nest: fewer configurations
   than domains (so the flat pool strands workers: nested replicate
   fan-outs run inline on the claiming domain), with per-point cost
   growing ~8x across the sweep (so the flat pool also idles at the
   join barrier while the widest point finishes alone). *)
let sched_processor_counts = [ 512; 512; 1024; 1024; 2048; 4096 ]
let sched_replicates = 16
let sched_domain_counts = [ 1; 2; 4; 8 ]

let sched_workload () =
  Ckpt_parallel.Domain_pool.parallel_map_list
    (fun processors ->
      let job = mini_job ~dist:weibull ~processors in
      let scenario = S.Scenario.create job in
      let policies = [ Po.Young.policy job; Po.Daly.high job; Po.Optexp.policy job ] in
      S.Evaluation.degradation_table ~scenario ~policies ~replicates:sched_replicates)
    sched_processor_counts

let timed_sched_workload ~sched ~domains =
  with_env "CKPT_SCHED" sched (fun () ->
      with_domains domains (fun () ->
          let t0 = Unix.gettimeofday () in
          let tables = sched_workload () in
          (tables, Unix.gettimeofday () -. t0)))

let run_sched_bench () =
  Printf.printf
    "\n=== Scheduler (nested %d-config x %d-replicate study, flat pool vs work stealing) ===\n%!"
    (List.length sched_processor_counts)
    sched_replicates;
  (* Hardware parallelism, captured before any CKPT_DOMAINS
     manipulation: a point timed with more domains than physical cores
     measures timeslicing, not scheduling, and must not count toward
     the speedup target. *)
  let physical_cores = Domain.recommended_domain_count () in
  let oversubscribed domains = domains > physical_cores in
  let reference, _ = timed_sched_workload ~sched:"seq" ~domains:1 in
  let deterministic = ref true in
  let curve =
    List.map
      (fun domains ->
        let flat_tables, flat_s = timed_sched_workload ~sched:"flat" ~domains in
        let steal_tables, steal_s = timed_sched_workload ~sched:"steal" ~domains in
        if flat_tables <> reference || steal_tables <> reference then deterministic := false;
        let speedup = flat_s /. steal_s in
        Printf.printf
          "domains=%d: flat %7.3f s   steal %7.3f s   steal/flat speedup %.2fx%s\n%!" domains
          flat_s steal_s speedup
          (if oversubscribed domains then
             Printf.sprintf "   [oversubscribed: %d physical cores]" physical_cores
           else "");
        (domains, flat_s, steal_s))
      sched_domain_counts
  in
  Printf.printf "deterministic: %s\n%!"
    (if !deterministic then "every mode and domain count matches the sequential tables"
     else "MISMATCH against the sequential reference tables");
  if not !deterministic then exit 1;
  (* The 1.5x target only holds where the domains are real: an
     oversubscribed point can meet (or miss) it through timeslicing
     noise, so such points never verify the target. *)
  let target_points =
    List.filter (fun (domains, _, _) -> domains >= 4 && not (oversubscribed domains)) curve
  in
  let target_verifiable = target_points <> [] in
  let best_nested_speedup =
    List.fold_left
      (fun acc (_, flat_s, steal_s) -> Float.max acc (flat_s /. steal_s))
      0. target_points
  in
  if not target_verifiable then begin
    Printf.printf
      "OVERSUBSCRIBED: only %d physical core(s); every >= 4-domain point exceeds the \
       machine, so the 1.5x steal-vs-flat target cannot be verified on this host\n%!"
      physical_cores;
    if Sys.getenv_opt "CKPT_BENCH_ASSERT" = Some "1" then begin
      Printf.eprintf
        "FAIL: CKPT_BENCH_ASSERT=1 but the nested-workload target is unverifiable (%d \
         physical cores < 4)\n%!"
        physical_cores;
      exit 1
    end
  end
  else begin
    Printf.printf "best steal-vs-flat speedup at >= 4 domains: %.2fx (target 1.5x)\n%!"
      best_nested_speedup;
    if best_nested_speedup < 1.5 then begin
      if Sys.getenv_opt "CKPT_BENCH_ASSERT" = Some "1" then begin
        Printf.eprintf
          "FAIL: work-stealing scheduler below the 1.5x nested-workload target at >= 4 \
           domains\n%!";
        exit 1
      end
      else
        Printf.printf
          "WARNING: below the 1.5x nested target (CKPT_BENCH_ASSERT=1 enforces)\n%!"
    end
  end;
  let curve_json =
    String.concat ",\n"
      (List.map
         (fun (domains, flat_s, steal_s) ->
           Printf.sprintf
             "    { \"domains\": %d, \"flat_seconds\": %.6f, \"steal_seconds\": %.6f, \
              \"speedup\": %.3f, \"oversubscribed\": %b }"
             domains flat_s steal_s (flat_s /. steal_s) (oversubscribed domains))
         curve)
  in
  let oversubscribed_domains =
    List.filter_map
      (fun (domains, _, _) -> if oversubscribed domains then Some (string_of_int domains) else None)
      curve
  in
  write_bench_json ~path:"BENCH_sched.json"
    ~meta:
      [
        ("bench", "nested-scheduler");
        ("physical_cores", string_of_int physical_cores);
        ("oversubscribed_domain_counts", String.concat "," oversubscribed_domains);
      ]
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"nested-scheduler\",\n\
       \  \"configurations\": %d,\n\
       \  \"replicates\": %d,\n\
       \  \"policies\": 3,\n\
       \  \"distribution\": \"weibull(k=0.7)\",\n\
       \  \"processor_counts\": [%s],\n\
       \  \"physical_cores\": %d,\n\
       \  \"curve\": [\n\
        %s\n\
       \  ],\n\
       \  \"best_nested_speedup_at_4plus\": %.3f,\n\
       \  \"target_verifiable\": %b,\n\
       \  \"deterministic\": true\n\
        }\n"
       (List.length sched_processor_counts)
       sched_replicates
       (String.concat ", " (List.map string_of_int sched_processor_counts))
       physical_cores curve_json best_nested_speedup target_verifiable)

(* -- stage 7: engine throughput (scalar vs batch lockstep) ------------------ *)

let engine_bench_processor_counts = [ 1024; 16384 ]
let engine_bench_stripe = 16

let engine_bench_replicates () =
  if Sys.getenv_opt "CKPT_BENCH_SMOKE" = Some "1" then 8 else 32

let run_engine_bench () =
  let replicates = engine_bench_replicates () in
  Printf.printf
    "\n\
     === Engine (scalar vs batch lockstep, %d replicates x 3 policies, stripe %d, 1 domain) \
     ===\n\
     %!"
    replicates engine_bench_stripe;
  let previous = previous_json_field ~path:"BENCH_engine.json" ~field:"speedup_at_16384" in
  let identical = ref true in
  let curve =
    List.map
      (fun processors ->
        let job = mini_job ~dist:weibull ~processors in
        let scenario = S.Scenario.create job in
        let policies = [| Po.Young.policy job; Po.Daly.high job; Po.Optexp.policy job |] in
        (* Trace sets are generated once and held, so both arms time
           pure engine work — never trace generation or the scenario
           cache. *)
        let traces = Array.init replicates (fun i -> S.Scenario.traces scenario ~replicate:i) in
        (* Warm both paths (allocator, lazy structures) outside the
           timed loops. *)
        ignore (S.Engine.run ~scenario ~traces:traces.(0) ~policy:policies.(0));
        ignore
          (S.Engine.run_stripe ~scenario ~traces:(Array.sub traces 0 1) ~policy:policies.(0) ());
        let t0 = Unix.gettimeofday () in
        let scalar =
          Array.map
            (fun policy -> Array.map (fun tr -> S.Engine.run ~scenario ~traces:tr ~policy) traces)
            policies
        in
        let scalar_s = Unix.gettimeofday () -. t0 in
        (* The batch arm mirrors the evaluation harness: one lockstep
           pass per policy over each stripe, the slots' lifetime
           templates computed once and shared by all three policies. *)
        let t0 = Unix.gettimeofday () in
        let stripes = (replicates + engine_bench_stripe - 1) / engine_bench_stripe in
        let per_stripe =
          Array.init stripes (fun stripe ->
              let first = stripe * engine_bench_stripe in
              let len = min engine_bench_stripe (replicates - first) in
              let stripe_traces = Array.sub traces first len in
              let initial_births =
                Array.map (fun tr -> S.Scenario.initial_lifetime_starts scenario tr) stripe_traces
              in
              Array.map
                (fun policy ->
                  S.Engine.run_stripe ~initial_births ~scenario ~traces:stripe_traces ~policy ())
                policies)
        in
        let batch =
          Array.init (Array.length policies) (fun j ->
              Array.concat (Array.to_list (Array.map (fun per -> per.(j)) per_stripe)))
        in
        let batch_s = Unix.gettimeofday () -. t0 in
        if compare scalar batch <> 0 then identical := false;
        let throughput s = float_of_int replicates /. s in
        Printf.printf
          "p=%5d: scalar %7.3f s (%8.2f rep/s)   batch %7.3f s (%8.2f rep/s)   speedup %.2fx\n%!"
          processors scalar_s (throughput scalar_s) batch_s (throughput batch_s)
          (scalar_s /. batch_s);
        (processors, scalar_s, batch_s))
      engine_bench_processor_counts
  in
  Printf.printf "bit-identical: %s\n%!"
    (if !identical then "batch outcomes == scalar outcomes at every point"
     else "MISMATCH between batch and scalar outcomes");
  if not !identical then exit 1;
  let speedup_at_16384 =
    List.fold_left (fun acc (p, sc, ba) -> if p = 16384 then sc /. ba else acc) 0. curve
  in
  Printf.printf "speedup at p=16384: %.2fx (target 2x)\n%!" speedup_at_16384;
  (match previous with
  | Some prev when prev > 0. ->
      Printf.printf "vs committed BENCH_engine.json: previous speedup_at_16384 was %.2fx\n%!" prev
  | Some _ | None -> Printf.printf "no previous BENCH_engine.json baseline to compare against\n%!");
  if speedup_at_16384 < 2. then begin
    if Sys.getenv_opt "CKPT_BENCH_ASSERT" = Some "1" then begin
      Printf.eprintf "FAIL: batch engine below the 2x scalar-throughput target at p=16384\n%!";
      exit 1
    end
    else Printf.printf "WARNING: below the 2x target (CKPT_BENCH_ASSERT=1 enforces)\n%!"
  end;
  let curve_json =
    String.concat ",\n"
      (List.map
         (fun (processors, scalar_s, batch_s) ->
           Printf.sprintf
             "    { \"processors\": %d, \"scalar_seconds\": %.6f, \"batch_seconds\": %.6f, \
              \"scalar_replicates_per_sec\": %.3f, \"batch_replicates_per_sec\": %.3f, \
              \"speedup\": %.3f }"
             processors scalar_s batch_s
             (float_of_int replicates /. scalar_s)
             (float_of_int replicates /. batch_s)
             (scalar_s /. batch_s))
         curve)
  in
  write_bench_json ~path:"BENCH_engine.json"
    ~meta:[ ("bench", "engine-throughput") ]
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"engine-throughput\",\n\
       \  \"replicates\": %d,\n\
       \  \"stripe\": %d,\n\
       \  \"engine\": \"scalar-vs-batch\",\n\
       \  \"policies\": 3,\n\
       \  \"distribution\": \"weibull(k=0.7)\",\n\
       \  \"domains\": 1,\n\
       \  \"curve\": [\n\
        %s\n\
       \  ],\n\
       \  \"speedup_at_16384\": %.3f,\n\
       \  \"deterministic\": true\n\
        }\n"
       replicates engine_bench_stripe curve_json speedup_at_16384)

(* -- stage 8: multi-process sweep workers ----------------------------------- *)

let sweep_worker_counts = [ 1; 2; 4 ]
let sweep_bench_stripe = 4

let sweep_bench_traces () =
  if Sys.getenv_opt "CKPT_BENCH_SMOKE" = Some "1" then 16 else 48

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* The worker path spawns processes, so this stage drives the real ckpt
   binary (built alongside this bench executable) end to end rather
   than calling into the library: what is measured is exactly what a
   user runs. *)
let ckpt_exe () =
  let dir = Filename.dirname Sys.executable_name in
  let candidate = Filename.concat dir (Filename.concat ".." "bin/ckpt.exe") in
  if Sys.file_exists candidate then Some candidate else None

let run_sweep_bench () =
  let traces = sweep_bench_traces () in
  Printf.printf
    "\n=== Sweep workers (ckpt sweep --workers N, sweep-smoke, %d replicates, stripe %d) ===\n%!"
    traces sweep_bench_stripe;
  let assert_enabled = Sys.getenv_opt "CKPT_BENCH_ASSERT" = Some "1" in
  match ckpt_exe () with
  | None ->
      Printf.printf "SKIP: ckpt binary not found next to the bench executable\n%!";
      if assert_enabled then begin
        Printf.eprintf "FAIL: CKPT_BENCH_ASSERT=1 but the sweep-worker stage could not run\n%!";
        exit 1
      end
  | Some exe ->
      let physical_cores = Domain.recommended_domain_count () in
      let oversubscribed workers = workers > physical_cores in
      let base =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ckpt-bench-sweep.%d" (Unix.getpid ()))
      in
      rm_rf base;
      Ckpt_store.Atomic_file.mkdir_p base;
      let run_one workers =
        let store = Filename.concat base (Printf.sprintf "store-w%d" workers) in
        let results = Filename.concat base (Printf.sprintf "results-w%d" workers) in
        let log = Filename.concat base (Printf.sprintf "sweep-w%d.log" workers) in
        with_env "CKPT_TRACES" (string_of_int traces) (fun () ->
            with_env "CKPT_SWEEP_STRIPE" (string_of_int sweep_bench_stripe) (fun () ->
                with_env "CKPT_RESULTS_DIR" results (fun () ->
                    let fd = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
                    let t0 = Unix.gettimeofday () in
                    let pid =
                      Unix.create_process exe
                        [|
                          exe; "sweep"; "--resume"; store; "--workers";
                          string_of_int workers; "sweep-smoke";
                        |]
                        Unix.stdin fd fd
                    in
                    Unix.close fd;
                    let _, status = Unix.waitpid [] pid in
                    let seconds = Unix.gettimeofday () -. t0 in
                    (match status with
                    | Unix.WEXITED 0 -> ()
                    | _ ->
                        Printf.eprintf
                          "FAIL: ckpt sweep --workers %d did not exit cleanly (see %s)\n%!"
                          workers log;
                        exit 1);
                    let units =
                      Array.fold_left
                        (fun n name ->
                          if Filename.check_suffix name ".part" then n + 1 else n)
                        0 (Sys.readdir store)
                    in
                    Printf.printf
                      "workers=%d: %7.3f s   %d units (%6.2f units/s)%s\n%!" workers
                      seconds units
                      (float_of_int units /. seconds)
                      (if oversubscribed workers then
                         Printf.sprintf "   [oversubscribed: %d physical cores]"
                           physical_cores
                       else "");
                    (workers, seconds, units, results))))
      in
      let runs = List.map run_one sweep_worker_counts in
      (* Byte-identity of every worker count's CSV output against the
         serial run: the whole point of the claim-and-merge design. *)
      let csvs dir =
        match Sys.readdir dir with
        | names ->
            let l =
              Array.to_list names |> List.filter (fun n -> Filename.check_suffix n ".csv")
            in
            List.sort compare l
        | exception Sys_error _ -> []
      in
      let reference =
        match List.find_opt (fun (w, _, _, _) -> w = 1) runs with
        | Some (_, _, _, results) -> results
        | None -> assert false
      in
      let identical = ref true in
      List.iter
        (fun (workers, _, _, results) ->
          if workers <> 1 then begin
            let names = csvs results in
            if names <> csvs reference then identical := false
            else
              List.iter
                (fun name ->
                  let read dir = Ckpt_store.Atomic_file.read (Filename.concat dir name) in
                  if read results <> read reference then identical := false)
                names
          end)
        runs;
      Printf.printf "byte-identical: %s\n%!"
        (if !identical then "every worker count reproduces the serial CSVs"
         else "MISMATCH against the --workers 1 output");
      if not !identical then exit 1;
      let serial_seconds =
        match List.find_opt (fun (w, _, _, _) -> w = 1) runs with
        | Some (_, s, _, _) -> s
        | None -> assert false
      in
      (* As in stage 6, the speedup target only means something where
         the workers are real cores. *)
      let target_points =
        List.filter (fun (w, _, _, _) -> w >= 2 && not (oversubscribed w)) runs
      in
      let target_verifiable = target_points <> [] in
      let best_speedup =
        List.fold_left
          (fun acc (_, s, _, _) -> Float.max acc (serial_seconds /. s))
          0. target_points
      in
      if not target_verifiable then begin
        Printf.printf
          "OVERSUBSCRIBED: only %d physical core(s); every multi-worker point exceeds the \
           machine, so the worker-speedup target cannot be verified on this host\n%!"
          physical_cores;
        if assert_enabled then begin
          Printf.eprintf
            "FAIL: CKPT_BENCH_ASSERT=1 but the sweep-worker target is unverifiable (%d \
             physical cores < 2)\n%!"
            physical_cores;
          exit 1
        end
      end
      else begin
        Printf.printf "best multi-worker speedup: %.2fx (target 1.3x)\n%!" best_speedup;
        if best_speedup < 1.3 then begin
          if assert_enabled then begin
            Printf.eprintf "FAIL: sweep workers below the 1.3x speedup target\n%!";
            exit 1
          end
          else
            Printf.printf "WARNING: below the 1.3x target (CKPT_BENCH_ASSERT=1 enforces)\n%!"
        end
      end;
      let units_total =
        match runs with (_, _, units, _) :: _ -> units | [] -> 0
      in
      let curve_json =
        String.concat ",\n"
          (List.map
             (fun (workers, seconds, units, _) ->
               Printf.sprintf
                 "    { \"workers\": %d, \"seconds\": %.6f, \"units_per_sec\": %.3f, \
                  \"speedup\": %.3f, \"oversubscribed\": %b }"
                 workers seconds
                 (float_of_int units /. seconds)
                 (serial_seconds /. seconds)
                 (oversubscribed workers))
             runs)
      in
      let oversubscribed_workers =
        List.filter_map
          (fun (w, _, _, _) -> if oversubscribed w then Some (string_of_int w) else None)
          runs
      in
      write_bench_json ~path:"BENCH_sweep.json"
        ~meta:
          [
            ("bench", "sweep-workers");
            ("physical_cores", string_of_int physical_cores);
            ("worker_counts",
             String.concat "," (List.map string_of_int sweep_worker_counts));
            ("oversubscribed_worker_counts", String.concat "," oversubscribed_workers);
          ]
        (Printf.sprintf
           "{\n\
           \  \"bench\": \"sweep-workers\",\n\
           \  \"experiment\": \"sweep-smoke\",\n\
           \  \"replicates\": %d,\n\
           \  \"stripe\": %d,\n\
           \  \"units\": %d,\n\
           \  \"physical_cores\": %d,\n\
           \  \"curve\": [\n\
            %s\n\
           \  ],\n\
           \  \"best_speedup_at_2plus\": %.3f,\n\
           \  \"target_verifiable\": %b,\n\
           \  \"byte_identical\": true\n\
            }\n"
           traces sweep_bench_stripe units_total physical_cores curve_json best_speedup
           target_verifiable);
      rm_rf base

let () =
  (* Long bench runs are natural sampler customers: with
     CKPT_METRICS_INTERVAL set the trajectory of every stage lands in
     the JSONL series; a no-op otherwise. *)
  T.Metrics_export.ensure_sampler ();
  let skip name = Sys.getenv_opt name = Some "1" in
  let baselines = solver_baselines () in
  if not (skip "CKPT_SKIP_EXPERIMENTS") then run_experiments ();
  if not (skip "CKPT_SKIP_MICRO") then run_micro ();
  if not (skip "CKPT_SKIP_EVAL_BENCH") then run_eval_bench ();
  if not (skip "CKPT_SKIP_TELEMETRY_BENCH") then run_telemetry_bench ();
  if not (skip "CKPT_SKIP_SOLVER_BENCH") then run_solver_bench ~baselines ();
  if not (skip "CKPT_SKIP_SCHED_BENCH") then run_sched_bench ();
  if not (skip "CKPT_SKIP_ENGINE_BENCH") then run_engine_bench ();
  if not (skip "CKPT_SKIP_SWEEP_BENCH") then run_sweep_bench ()
