(* Regenerate one paper artifact (or all) by id:
     dune exec bin/experiments.exe -- fig4
     dune exec bin/experiments.exe -- all --full
   Scale knobs also respond to CKPT_TRACES / CKPT_FULL / CKPT_SEED. *)

let usage () =
  prerr_endline "usage: experiments <id>|all|list [--full] [--traces N]";
  prerr_endline "known ids:";
  List.iter
    (fun e ->
      Printf.eprintf "  %-12s %s\n" e.Ckpt_experiments.Registry.id
        e.Ckpt_experiments.Registry.description)
    (Ckpt_experiments.Registry.all ());
  exit 2

let () =
  let module R = Ckpt_experiments.Registry in
  let module C = Ckpt_experiments.Config in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse config ids = function
    | [] -> (config, List.rev ids)
    | "--full" :: rest -> parse { config with C.full = true } ids rest
    | "--traces" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some n when n > 0 -> parse { config with C.replicates = n } ids rest
        | Some _ | None -> usage ()
      end
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then usage () else parse config (arg :: ids) rest
  in
  let config, ids = parse (C.default ()) [] args in
  match ids with
  | [] | [ "list" ] -> usage ()
  | [ "all" ] -> R.run_all config
  | ids ->
      List.iter
        (fun id ->
          match R.find id with
          | Some e -> e.R.run config
          | None ->
              Printf.eprintf "unknown experiment %S\n" id;
              usage ())
        ids
