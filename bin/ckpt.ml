(* Command-line front end for the checkpointing library.

   Subcommands:
     period       optimal/heuristic checkpoint periods for a platform
     simulate     evaluate the full policy roster on simulated traces
     schedule     a policy's failure-free checkpoint timetable
     mtbf         platform MTBF under both rejuvenation options
     waste        first-order waste analysis (Young's back-of-envelope)
     trace        trace one execution: event timeline + metrics reconciliation
     explain      annotated decision timeline with expected-value rationale
     stats        run an evaluation with the metrics registry enabled
     trace-stats  generate traces and report their empirical statistics
     gen-log      write a synthetic LANL-style availability log
     fit-log      MLE-fit lifetime models to an availability log
     experiment   regenerate a paper table/figure by id
     sweep        run experiments against a resumable checkpoint store
     sched-report per-worker utilization breakdown of the steal scheduler
     bench        diff/check BENCH_*.json artifacts (regression tooling) *)

open Cmdliner
module D = Ckpt_distributions
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module F = Ckpt_failures
module C = Ckpt_core
module E = Ckpt_experiments
module T = Ckpt_telemetry

(* -- shared argument bundles ------------------------------------------- *)

let mtbf_arg =
  let doc = "Per-processor MTBF in hours." in
  Arg.(value & opt float (125. *. 365.25 *. 24.) & info [ "mtbf" ] ~docv:"HOURS" ~doc)

let shape_arg =
  let doc = "Weibull shape parameter; omit for Exponential failures." in
  Arg.(value & opt (some float) None & info [ "shape"; "k" ] ~docv:"K" ~doc)

let processors_arg =
  let doc = "Number of processors enrolled by the job." in
  Arg.(value & opt int P.Presets.jaguar_processors & info [ "p"; "processors" ] ~docv:"P" ~doc)

let checkpoint_arg =
  let doc = "Checkpoint (and recovery) cost in seconds." in
  Arg.(value & opt float 600. & info [ "checkpoint"; "C" ] ~docv:"SECONDS" ~doc)

let downtime_arg =
  let doc = "Downtime after a failure, seconds." in
  Arg.(value & opt float 60. & info [ "downtime"; "D" ] ~docv:"SECONDS" ~doc)

let work_days_arg =
  let doc = "Failure-free execution time of the job on the chosen processors, in days." in
  Arg.(value & opt float 8. & info [ "work-days" ] ~docv:"DAYS" ~doc)

let traces_arg =
  let doc = "Number of simulated trace sets." in
  Arg.(value & opt int 10 & info [ "traces" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~docv:"SEED" ~doc)

let distribution ~mtbf_hours ~shape =
  let mtbf = mtbf_hours *. 3600. in
  match shape with
  | None -> D.Exponential.of_mtbf ~mtbf
  | Some k -> D.Weibull.of_mtbf ~mtbf ~shape:k

let job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days =
  let dist = distribution ~mtbf_hours ~shape in
  let machine =
    P.Machine.create ~total_processors:processors ~downtime
      ~overhead:(P.Overhead.constant checkpoint)
  in
  Po.Job.create ~dist ~processors ~machine ~work_time:(work_days *. P.Units.day)

(* Shared by schedule/trace: a policy by its roster name.  The
   period-search policy needs the scenario (it tunes on traces). *)
let policy_of_name ?scenario job name =
  match String.lowercase_ascii name with
  | "young" -> Po.Young.policy job
  | "dalylow" -> Po.Daly.low job
  | "dalyhigh" -> Po.Daly.high job
  | "optexp" -> Po.Optexp.policy job
  | "bouguerra" -> Po.Bouguerra.policy job
  | "liu" -> Po.Liu.policy job
  | "dpnf" | "dpnextfailure" -> Po.Dp_policies.dp_next_failure job
  | "dpmakespan" -> Po.Dp_policies.dp_makespan job
  | "periodvariation" | "search" -> begin
      match scenario with
      | Some scenario -> S.Period_search.policy scenario
      | None -> failwith "the period-search policy needs simulated traces"
    end
  | other -> failwith (Printf.sprintf "unknown policy %S" other)

(* -- period ------------------------------------------------------------ *)

let period_cmd =
  let run mtbf_hours shape processors checkpoint downtime work_days =
    let job = job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days in
    Printf.printf "platform MTBF: %.0f s\n" (Po.Job.platform_mtbf job);
    Printf.printf "%-12s %12s\n" "policy" "period (s)";
    List.iter
      (fun (name, period) -> Printf.printf "%-12s %12.0f\n" name period)
      [
        ("Young", Po.Young.period job);
        ("DalyLow", Po.Daly.low_order_period job);
        ("DalyHigh", Po.Daly.high_order_period job);
        ("OptExp", Po.Optexp.period job);
        ("Bouguerra", Po.Bouguerra.period job);
      ];
    let k =
      C.Theory.parallel_optimal_chunk_count
        ~rate:(1. /. Po.Job.unit_mtbf job)
        ~processors ~parallel_work:job.Po.Job.work_time ~checkpoint
    in
    Printf.printf "OptExp chunk count K* = %d\n" k
  in
  let term =
    Term.(
      const run $ mtbf_arg $ shape_arg $ processors_arg $ checkpoint_arg $ downtime_arg
      $ work_days_arg)
  in
  Cmd.v (Cmd.info "period" ~doc:"Print each heuristic's checkpoint period.") term

(* -- simulate ------------------------------------------------------------ *)

let simulate_cmd =
  let run mtbf_hours shape processors checkpoint downtime work_days traces seed =
    let job = job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days in
    let scenario = S.Scenario.create ~seed:(Int64.of_int seed) job in
    let dp_makespan = shape = None in
    let policies =
      [ Po.Young.policy job; Po.Daly.low job; Po.Daly.high job; Po.Optexp.policy job;
        Po.Bouguerra.policy job; Po.Liu.policy job; S.Period_search.policy scenario;
        Po.Dp_policies.dp_next_failure job ]
      @ (if dp_makespan then [ Po.Dp_policies.dp_makespan job ] else [])
    in
    let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates:traces in
    Format.printf "%a@." S.Evaluation.pp_table table
  in
  let term =
    Term.(
      const run $ mtbf_arg $ shape_arg $ processors_arg $ checkpoint_arg $ downtime_arg
      $ work_days_arg $ traces_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Evaluate the policy roster on simulated failure traces.")
    term

(* -- mtbf ---------------------------------------------------------------- *)

let mtbf_cmd =
  let run mtbf_hours shape processors downtime =
    let dist = distribution ~mtbf_hours ~shape in
    List.iter
      (fun (name, policy) ->
        let v = F.Rejuvenation.platform_mtbf policy dist ~processors ~downtime in
        Printf.printf "%-22s %14.1f s  (%.4g h)\n" name v (v /. 3600.))
      [
        ("rejuvenate-all", F.Rejuvenation.Rejuvenate_all);
        ("rejuvenate-failed-only", F.Rejuvenation.Rejuvenate_failed_only);
      ]
  in
  let term = Term.(const run $ mtbf_arg $ shape_arg $ processors_arg $ downtime_arg) in
  Cmd.v
    (Cmd.info "mtbf" ~doc:"Platform MTBF under both rejuvenation options (Figure 1).")
    term

(* -- gen-log -------------------------------------------------------------- *)

let gen_log_cmd =
  let out_arg =
    Arg.(value & opt string "lanl_synth.log" & info [ "o"; "output" ] ~docv:"PATH")
  in
  let cluster_arg =
    Arg.(value & opt int 19 & info [ "cluster" ] ~docv:"18|19")
  in
  let run out cluster seed =
    let params =
      match cluster with
      | 18 -> F.Lanl_synth.cluster18_parameters
      | 19 -> F.Lanl_synth.cluster19_parameters
      | _ -> failwith "cluster must be 18 or 19"
    in
    let log = F.Lanl_synth.generate ~seed:(Int64.of_int seed) params in
    F.Failure_log.save log
      ~node_of_interval:(fun i -> i / params.F.Lanl_synth.intervals_per_node)
      out;
    Printf.printf "wrote %d intervals over %d nodes to %s (mean interval %.3e s)\n"
      (F.Failure_log.count log) log.F.Failure_log.nodes out (F.Failure_log.mean_interval log)
  in
  let term = Term.(const run $ out_arg $ cluster_arg $ seed_arg) in
  Cmd.v (Cmd.info "gen-log" ~doc:"Write a synthetic LANL-style availability log.") term

(* -- schedule ------------------------------------------------------------------ *)

let schedule_cmd =
  let policy_arg =
    let doc = "Policy: young | dalylow | dalyhigh | optexp | bouguerra | liu | dpnf." in
    Arg.(value & opt string "dpnf" & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"CSV")
  in
  let run mtbf_hours shape processors checkpoint downtime work_days policy_name out =
    let job = job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days in
    let policy = policy_of_name job policy_name in
    let entries = Po.Schedule.failure_free policy job in
    (match Po.Schedule.interval_range entries with
    | None -> print_endline "the policy declines to produce a timetable"
    | Some (lo, hi) ->
        Printf.printf "%d checkpoints; intervals %.0f .. %.0f s\n" (List.length entries) lo hi;
        List.iteri
          (fun i e ->
            if i < 10 then
              Printf.printf "  #%-3d work %8.0f s, checkpoint at t = %10.0f s\n" (i + 1)
                e.Po.Schedule.chunk e.Po.Schedule.checkpoint_at)
          entries;
        if List.length entries > 10 then
          Printf.printf "  ... (%d more)\n" (List.length entries - 10));
    match out with
    | None -> ()
    | Some path ->
        Ckpt_store.Atomic_file.write ~path (Po.Schedule.to_csv entries);
        Printf.printf "wrote %s\n" path
  in
  let term =
    Term.(
      const run $ mtbf_arg $ shape_arg $ processors_arg $ checkpoint_arg $ downtime_arg
      $ work_days_arg $ policy_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print a policy's failure-free checkpoint timetable.")
    term

(* -- waste ------------------------------------------------------------------- *)

let waste_cmd =
  let run mtbf_hours processors checkpoint =
    let mu = mtbf_hours *. 3600. in
    let m = mu /. float_of_int processors in
    let period = C.Waste.optimal_period ~checkpoint ~platform_mtbf:m in
    Printf.printf "platform MTBF:        %14.0f s\n" m;
    Printf.printf "first-order period:   %14.0f s   (Young)\n" period;
    Printf.printf "minimal waste:        %14.1f %%\n"
      (100. *. C.Waste.minimal_waste ~checkpoint ~platform_mtbf:m);
    Printf.printf "usable-processor cap: %14d    (waste reaches 100%%)\n"
      (C.Waste.usable_processor_limit ~checkpoint ~processor_mtbf:mu)
  in
  let term = Term.(const run $ mtbf_arg $ processors_arg $ checkpoint_arg) in
  Cmd.v
    (Cmd.info "waste" ~doc:"First-order waste analysis of periodic checkpointing.")
    term

(* -- trace-stats --------------------------------------------------------------- *)

let trace_stats_cmd =
  let horizon_arg =
    Arg.(value & opt float 11. & info [ "horizon-years" ] ~docv:"YEARS")
  in
  let run mtbf_hours shape processors seed horizon_years =
    let dist = distribution ~mtbf_hours ~shape in
    let traces =
      F.Trace_set.generate ~seed:(Int64.of_int seed) ~replicate:0 dist ~processors
        ~horizon:(horizon_years *. P.Units.year)
    in
    Format.printf "%a@." F.Trace_stats.pp (F.Trace_stats.measure traces);
    let fit = D.Fit.best_fit (F.Trace_stats.interarrivals traces) in
    Format.printf "best distribution fit: %s (KS %.4f)@."
      fit.D.Fit.distribution.D.Distribution.name fit.D.Fit.ks_statistic
  in
  let term =
    Term.(const run $ mtbf_arg $ shape_arg $ processors_arg $ seed_arg $ horizon_arg)
  in
  Cmd.v
    (Cmd.info "trace-stats"
       ~doc:"Generate failure traces and report their empirical statistics and best fit.")
    term

(* -- fit-log ----------------------------------------------------------------- *)

let fit_log_cmd =
  let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG") in
  let run path =
    let log = F.Failure_log.load path in
    Printf.printf "%s: %d availability intervals over %d nodes, mean %.4g s\n\n" path
      (F.Failure_log.count log) log.F.Failure_log.nodes (F.Failure_log.mean_interval log);
    let data = log.F.Failure_log.intervals in
    Printf.printf "%-14s %14s %12s %10s\n" "model" "log-likelihood" "AIC" "KS";
    List.iter
      (fun (name, fit) ->
        Printf.printf "%-14s %14.1f %12.1f %10.4f   %s\n" name fit.D.Fit.log_likelihood
          fit.D.Fit.aic fit.D.Fit.ks_statistic
          fit.D.Fit.distribution.D.Distribution.name)
      [
        ("exponential", D.Fit.exponential data);
        ("weibull", D.Fit.weibull data);
        ("lognormal", D.Fit.lognormal data);
      ];
    let best = D.Fit.best_fit data in
    Printf.printf "\nbest fit by AIC: %s\n" best.D.Fit.distribution.D.Distribution.name
  in
  let term = Term.(const run $ path_arg) in
  Cmd.v
    (Cmd.info "fit-log"
       ~doc:"Fit Exponential/Weibull/LogNormal models to an availability log by MLE.")
    term

(* -- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let policy_arg =
    let doc =
      "Policy: young | dalylow | dalyhigh | optexp | bouguerra | liu | dpnf | dpmakespan | \
       search."
    in
    Arg.(value & opt string "dpnf" & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let replicate_arg =
    Arg.(value & opt int 0 & info [ "replicate" ] ~docv:"N" ~doc:"Trace-set replicate index.")
  in
  let out_arg =
    let doc = "Write the trace (*.jsonl, or Chrome trace_event JSON otherwise)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let limit_arg =
    Arg.(value & opt int 40 & info [ "limit" ] ~docv:"N" ~doc:"Timeline events to print.")
  in
  let run mtbf_hours shape processors checkpoint downtime work_days seed policy_name replicate
      out limit =
    let job = job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days in
    let scenario = S.Scenario.create ~seed:(Int64.of_int seed) job in
    let policy = policy_of_name ~scenario job policy_name in
    let traces = S.Scenario.traces scenario ~replicate in
    let buf =
      T.Tracer.create_buffer
        ~name:(Printf.sprintf "rep%d/%s" replicate policy.Po.Policy.name)
        ()
    in
    (match S.Engine.run_traced ~trace:buf ~scenario ~traces ~policy with
    | S.Engine.Policy_failed { at_time; remaining } ->
        Printf.printf "%s failed at t = %.0f s with %.0f s of work left\n"
          policy.Po.Policy.name at_time remaining
    | S.Engine.Completed m ->
        let open S.Engine in
        Printf.printf "%s: makespan %.0f s\n" policy.Po.Policy.name m.makespan;
        List.iter
          (fun (label, v) ->
            Printf.printf "  %-16s %14.1f s  (%5.1f%%)\n" label v (100. *. v /. m.makespan))
          [
            ("useful work", m.useful_work);
            ("checkpoints", m.checkpoint_time);
            ("wasted", m.wasted_time);
            ("recoveries", m.recovery_time);
            ("downtime stalls", m.stall_time);
          ];
        Printf.printf "  %d failures, %d chunks (%.0f .. %.0f s)\n" m.failures m.chunks
          m.min_chunk m.max_chunk;
        let t = T.Tracer.totals buf in
        Printf.printf
          "trace: %d events (%d dropped); spans sum to work %.1f, checkpoint %.1f, waste \
           %.1f, recovery %.1f, downtime %.1f\n"
          (T.Tracer.length buf) (T.Tracer.dropped buf) t.T.Tracer.work t.T.Tracer.checkpoint
          t.T.Tracer.waste t.T.Tracer.recovery t.T.Tracer.downtime);
    Format.printf "%a@." (T.Tracer.pp_timeline ~limit) buf;
    match out with
    | None -> ()
    | Some path ->
        T.Trace_export.write ~path [ buf ];
        T.Provenance.write_sidecar
          ~extra:
            [
              ("policy", policy.Po.Policy.name);
              ("replicate", string_of_int replicate);
              ("seed", string_of_int seed);
            ]
          ~path ();
        Printf.printf "wrote %s (and %s)\n" path (T.Provenance.sidecar_path path)
  in
  let term =
    Term.(
      const run $ mtbf_arg $ shape_arg $ processors_arg $ checkpoint_arg $ downtime_arg
      $ work_days_arg $ seed_arg $ policy_arg $ replicate_arg $ out_arg $ limit_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace one execution: typed event timeline, waste breakdown, trace_event export.")
    term

(* -- explain ------------------------------------------------------------------ *)

let explain_cmd =
  let policy_arg =
    let doc =
      "Policy: young | dalylow | dalyhigh | optexp | bouguerra | liu | dpnf | dpmakespan | \
       search."
    in
    Arg.(value & opt string "dpnf" & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let replicate_arg =
    Arg.(value & opt int 0 & info [ "replicate" ] ~docv:"N" ~doc:"Trace-set replicate index.")
  in
  let limit_arg =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Decisions to annotate (negative for all).")
  in
  let out_arg =
    let doc = "Also write the transcript to a file (with a provenance sidecar)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let run mtbf_hours shape processors checkpoint downtime work_days seed policy_name replicate
      limit out =
    let job = job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days in
    let scenario = S.Scenario.create ~seed:(Int64.of_int seed) job in
    let policy = policy_of_name ~scenario job policy_name in
    let explained = S.Explain.run ~scenario ~policy ~replicate in
    let transcript = Format.asprintf "%a" (S.Explain.print ~limit) explained in
    print_endline transcript;
    (match explained.S.Explain.outcome with
    | S.Engine.Completed _ when not (S.Explain.reconciles explained) ->
        if explained.S.Explain.dropped = 0 then begin
          prerr_endline "ckpt explain: trace totals do not reconcile with engine metrics";
          exit 1
        end
    | _ -> ());
    match out with
    | None -> ()
    | Some path ->
        Ckpt_store.Atomic_file.write ~path (transcript ^ "\n");
        T.Provenance.write_sidecar
          ~extra:
            [
              ("policy", policy.Po.Policy.name);
              ("replicate", string_of_int replicate);
              ("seed", string_of_int seed);
            ]
          ~path ();
        Printf.printf "wrote %s (and %s)\n" path (T.Provenance.sidecar_path path)
  in
  let term =
    Term.(
      const run $ mtbf_arg $ shape_arg $ processors_arg $ checkpoint_arg $ downtime_arg
      $ work_days_arg $ seed_arg $ policy_arg $ replicate_arg $ limit_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay one execution and annotate every policy decision with its expected-value \
          rationale (platform hazard, expected time to next failure, commit probability) and \
          realized outcome, plus a waste-decomposition footer reconciled bitwise against the \
          event stream.")
    term

(* -- stats ------------------------------------------------------------------- *)

let stats_cmd =
  let run mtbf_hours shape processors checkpoint downtime work_days traces seed =
    T.Metrics.set_enabled true;
    let job = job ~mtbf_hours ~shape ~processors ~checkpoint ~downtime ~work_days in
    let scenario = S.Scenario.create ~seed:(Int64.of_int seed) job in
    let dp_makespan = shape = None in
    let policies =
      [ Po.Young.policy job; Po.Daly.low job; Po.Daly.high job; Po.Optexp.policy job;
        Po.Bouguerra.policy job; Po.Liu.policy job; S.Period_search.policy scenario;
        Po.Dp_policies.dp_next_failure job ]
      @ (if dp_makespan then [ Po.Dp_policies.dp_makespan job ] else [])
    in
    let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates:traces in
    Format.printf "%a@." S.Evaluation.pp_table table;
    Format.printf "metrics registry:@.%a@." T.Metrics.pp_snapshot (T.Metrics.snapshot ())
  in
  let term =
    Term.(
      const run $ mtbf_arg $ shape_arg $ processors_arg $ checkpoint_arg $ downtime_arg
      $ work_days_arg $ traces_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Evaluate the policy roster with the metrics registry enabled and print every \
          counter, timer and histogram.")
    term

(* -- sched-report ------------------------------------------------------------ *)

(* Run a stage-6-shaped nested workload under the steal scheduler with
   the flight recorder armed, then break each worker's wall time down
   by state.  This is the triage tool for ROADMAP open item 5: the
   dominant-overhead line names which of the three candidate causes
   (failed steals, parking churn, injector contention) actually costs
   time on this machine. *)
let sched_report_cmd =
  let configs_arg =
    let doc =
      "Processor counts, one nested evaluation per entry (the skew mirrors bench stage 6)."
    in
    Arg.(
      value
      & opt (list int) [ 512; 512; 1024; 1024; 2048; 4096 ]
      & info [ "configs" ] ~docv:"P,P,..." ~doc)
  in
  let replicates_arg =
    Arg.(value & opt int 16 & info [ "traces" ] ~docv:"N" ~doc:"Replicates per configuration.")
  in
  let out_arg =
    let doc = "Also export the recording as a Chrome trace_event file (chrome://tracing)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH" ~doc)
  in
  let run configs replicates out =
    if configs = [] then begin
      prerr_endline "ckpt sched-report: empty --configs";
      exit 2
    end;
    (* The recorder instruments the steal backend only, and the steal
       backend only engages with >= 2 domains — on a 1-core host the
       report still has to show scheduler behavior, not the inline
       fallback. *)
    Unix.putenv "CKPT_SCHED" "steal";
    T.Flight_recorder.set_enabled true;
    let domains = max 2 (Ckpt_parallel.Domain_pool.recommended_domains ()) in
    Unix.putenv "CKPT_DOMAINS" (string_of_int domains);
    let weibull = D.Weibull.of_mtbf ~mtbf:(P.Units.of_years 125.) ~shape:0.7 in
    let mini_job p =
      Po.Job.create ~dist:weibull ~processors:p
        ~machine:
          (P.Machine.create ~total_processors:p ~downtime:60.
             ~overhead:(P.Overhead.constant 600.))
        ~work_time:(P.Units.of_years 1000. /. float_of_int p)
    in
    let t0 = Unix.gettimeofday () in
    let tables =
      Ckpt_parallel.Domain_pool.parallel_map_list
        (fun p ->
          let job = mini_job p in
          let scenario = S.Scenario.create job in
          let policies = [ Po.Young.policy job; Po.Daly.high job; Po.Optexp.policy job ] in
          S.Evaluation.degradation_table ~scenario ~policies ~replicates)
        configs
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "sched-report: %d configurations x %d replicates x 3 policies, %d domains, %.2f s wall\n\n"
      (List.length tables) replicates domains wall;
    let reports =
      List.filter (fun r -> r.T.Flight_recorder.wr_wall > 0.) (T.Flight_recorder.report ())
    in
    if reports = [] then begin
      prerr_endline "ckpt sched-report: no spans recorded (workload too small?)";
      exit 1
    end;
    let pct r s = 100. *. T.Flight_recorder.state_seconds r s /. r.T.Flight_recorder.wr_wall in
    Printf.printf "%-11s %8s %6s %6s %6s %6s %6s %7s %12s\n" "worker" "wall s" "run%" "help%"
      "steal%" "fail%" "park%" "inject%" "attributed%";
    let min_attr = ref infinity in
    List.iter
      (fun r ->
        let attr = 100. *. r.T.Flight_recorder.wr_attributed /. r.T.Flight_recorder.wr_wall in
        min_attr := Float.min !min_attr attr;
        Printf.printf "%-11s %8.3f %6.1f %6.1f %6.1f %6.1f %6.1f %7.1f %12.1f%s\n"
          r.T.Flight_recorder.wr_name r.T.Flight_recorder.wr_wall
          (pct r T.Flight_recorder.Run_task)
          (pct r T.Flight_recorder.Join_help)
          (pct r T.Flight_recorder.Steal_success)
          (pct r T.Flight_recorder.Steal_attempt)
          (pct r T.Flight_recorder.Park)
          (pct r T.Flight_recorder.Inject)
          attr
          (if r.T.Flight_recorder.wr_dropped > 0 then
             Printf.sprintf "  (%d spans dropped)" r.T.Flight_recorder.wr_dropped
           else ""))
      reports;
    (match T.Flight_recorder.overheads reports with
    | dominant :: rest ->
        Printf.printf "\ndominant overhead: %s (%.3f s across %d workers%s)\n"
          dominant.T.Flight_recorder.ov_label dominant.T.Flight_recorder.ov_seconds
          (List.length reports)
          (String.concat ""
             (List.map
                (fun o ->
                  Printf.sprintf "; %s %.3f s" o.T.Flight_recorder.ov_label
                    o.T.Flight_recorder.ov_seconds)
                rest))
    | [] -> ());
    Printf.printf "min attribution: %.1f%% (target >= 95%%)\n" !min_attr;
    match out with
    | Some path ->
        T.Trace_export.write_flight ~path (T.Flight_recorder.tracks ());
        Printf.printf "wrote %s\n%!" path
    | None -> ()
  in
  let term = Term.(const run $ configs_arg $ replicates_arg $ out_arg) in
  Cmd.v
    (Cmd.info "sched-report"
       ~doc:
         "Run a nested evaluation workload with the scheduler flight recorder armed and print \
          a per-worker busy/steal/idle utilization breakdown naming the dominant overhead.")
    term

(* -- bench diff / bench check ------------------------------------------------ *)

let bench_diff_cmd =
  let old_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json") in
  let new_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json") in
  let threshold_arg =
    let doc =
      "Override every per-metric threshold (relative percent for rates/times, percentage \
       points for *_percent metrics)."
    in
    Arg.(value & opt (some float) None & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let run old_path new_path threshold =
    match T.Bench_compare.diff ?threshold ~old_path ~new_path () with
    | Error msg ->
        Printf.eprintf "ckpt bench diff: %s\n" msg;
        exit T.Bench_compare.exit_error
    | Ok v ->
        (* Machine-readable verdict on stdout, human summary on stderr. *)
        print_endline (T.Json.to_string ~pretty:true (T.Bench_compare.verdict_json v));
        List.iter
          (fun m -> Printf.eprintf "incomparable: %s\n" m)
          v.T.Bench_compare.v_config_mismatches;
        List.iter
          (fun c ->
            if c.T.Bench_compare.c_regressed || c.T.Bench_compare.c_improved then
              Printf.eprintf "%s %s: %g -> %g (%+.1f%s, threshold %g)\n"
                (if c.T.Bench_compare.c_regressed then "REGRESSION" else "improvement")
                c.T.Bench_compare.c_metric c.T.Bench_compare.c_old c.T.Bench_compare.c_new
                c.T.Bench_compare.c_delta
                (match c.T.Bench_compare.c_direction with
                | T.Bench_compare.Lower_better_pp -> "pp"
                | _ -> "%")
                c.T.Bench_compare.c_threshold)
          v.T.Bench_compare.v_comparisons;
        exit (T.Bench_compare.exit_code v)
  in
  let term = Term.(const run $ old_arg $ new_arg $ threshold_arg) in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH_*.json artifacts provenance-aware: per-metric thresholds, \
          machine-readable verdict on stdout, nonzero exit on regression, distinct exit \
          code (3) when the sidecars disagree on core count or scheduler backend.")
    term

let bench_check_cmd =
  let dir_arg =
    Arg.(value & pos 0 string "." & info [] ~docv:"DIR" ~doc:"Directory holding BENCH_*.json.")
  in
  let run dir =
    let results = T.Bench_compare.check ~dir in
    if results = [] then begin
      Printf.eprintf "ckpt bench check: no BENCH_*.json under %s\n" dir;
      exit T.Bench_compare.exit_error
    end;
    let failed = ref false in
    List.iter
      (fun (path, problems) ->
        match problems with
        | [] -> (
            (* A clean artifact must also survive self-comparison. *)
            match T.Bench_compare.diff ~old_path:path ~new_path:path () with
            | Ok v when T.Bench_compare.exit_code v = 0 -> Printf.printf "ok  %s\n" path
            | Ok v ->
                failed := true;
                Printf.printf "BAD %s: self-diff exit %d\n" path (T.Bench_compare.exit_code v)
            | Error msg ->
                failed := true;
                Printf.printf "BAD %s: self-diff failed: %s\n" path msg)
        | problems ->
            failed := true;
            List.iter (fun p -> Printf.printf "BAD %s\n" p) problems)
      results;
    exit (if !failed then T.Bench_compare.exit_regression else 0)
  in
  let term = Term.(const run $ dir_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate every BENCH_*.json in a directory: parseable, named bench, provenance \
          sidecar present, and self-comparison clean.")
    term

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Bench-trajectory tooling: diff two artifacts, or sanity-check a directory.")
    [ bench_diff_cmd; bench_check_cmd ]

(* -- experiment ------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID")
  in
  let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale parameters.") in
  let run id full traces =
    let config = E.Config.default () in
    let config =
      {
        config with
        E.Config.full = config.E.Config.full || full;
        replicates = (if traces > 0 then traces else config.E.Config.replicates);
      }
    in
    if id = "all" then E.Registry.run_all config
    else begin
      match E.Registry.find id with
      | Some e -> e.E.Registry.run config
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " (E.Registry.ids ()));
          exit 2
    end
  in
  let traces_arg =
    Arg.(value & opt int 0 & info [ "traces" ] ~docv:"N" ~doc:"Replicates per configuration.")
  in
  let term = Term.(const run $ id_arg $ full_arg $ traces_arg) in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper table/figure by id (or 'all').") term

(* -- sweep ----------------------------------------------------------------- *)

let sweep_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let resume_arg =
    let doc =
      "Checkpoint-store directory: completed (experiment, scenario, replicate-stripe) units \
       are persisted here and skipped on re-run, so an interrupted sweep resumes where it \
       left off with bit-identical output.  Defaults to $(b,CKPT_SWEEP_DIR)."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)
  in
  let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale parameters.") in
  let traces_arg =
    Arg.(value & opt int 0 & info [ "traces" ] ~docv:"N" ~doc:"Replicates per configuration.")
  in
  let workers_arg =
    let doc =
      "Worker processes claiming units from the shared store (claim markers arbitrate, no \
       coordinator); the parent then merges in canonical order, so output is byte-identical \
       to $(b,--workers 1).  Defaults to $(b,CKPT_SWEEP_WORKERS) (else 1)."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let run_ids config ids =
    match ids with
    | [] | [ "all" ] -> E.Registry.run_all config
    | ids ->
        List.iter
          (fun id ->
            match E.Registry.find id with
            | Some e -> e.E.Registry.run config
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" id
                  (String.concat ", " (E.Registry.ids ()));
                exit 2)
          ids
  in
  let print_stats ~label (s : E.Sweep_store.stats) =
    Printf.printf
      "%s: %d units skipped, %d computed, %d invalidated, %d claimed, %d busy, %d reaped\n%!"
      label s.E.Sweep_store.skipped s.E.Sweep_store.computed s.E.Sweep_store.invalidated
      s.E.Sweep_store.claimed s.E.Sweep_store.busy s.E.Sweep_store.reaped
  in
  let run ids resume full traces workers =
    let config = E.Config.default () in
    let dir =
      match resume with
      | Some d -> d
      | None -> (
          match config.E.Config.sweep_dir with
          | Some d -> d
          | None ->
              prerr_endline "ckpt sweep: pass --resume DIR (or set CKPT_SWEEP_DIR)";
              exit 2)
    in
    let replicates = if traces > 0 then traces else config.E.Config.replicates in
    let config =
      {
        config with
        E.Config.full = config.E.Config.full || full;
        replicates;
        sweep_dir = Some dir;
      }
    in
    let store = E.Sweep_store.create ~dir in
    E.Sweep_store.reset_stats ();
    match E.Sweep_workers.worker_index () with
    | Some index ->
        (* Child process spawned by the parent below: compute claimed
           units, write the stats file, and exit — the parent renders
           all output. *)
        E.Sweep_workers.run_as_worker ~store ~index (fun () -> run_ids config ids)
    | None ->
        let workers =
          match workers with Some n -> n | None -> E.Sweep_workers.default_workers ()
        in
        if workers < 1 then begin
          prerr_endline "ckpt sweep: --workers must be >= 1";
          exit 2
        end;
        if workers > 1 then begin
          (* Respawn this exact invocation as marked worker children;
             explicit --traces/--full pin the resolved values so the
             children cannot drift from the parent's config. *)
          let args =
            Array.of_list
              (Sys.argv.(0) :: "sweep" :: "--resume" :: dir :: "--traces"
               :: string_of_int replicates
               :: ((if config.E.Config.full then [ "--full" ] else []) @ ids))
          in
          Printf.printf "sweep: launching %d workers over %s\n%!" workers dir;
          let summary =
            E.Sweep_workers.launch ~store ~workers ~exe:Sys.executable_name ~args
              ~progress:(fun ~alive ~units ->
                Printf.printf "sweep: %d units in store, %d workers running\n%!" units
                  alive)
              ()
          in
          List.iter
            (fun r ->
              let status =
                match r.E.Sweep_workers.r_outcome with
                | E.Sweep_workers.Finished -> "finished"
                | E.Sweep_workers.Failed n -> Printf.sprintf "FAILED (exit %d)" n
                | E.Sweep_workers.Signaled s -> Printf.sprintf "KILLED (signal %d)" s
              in
              let counts =
                match r.E.Sweep_workers.r_stats with
                | Some s ->
                    Printf.sprintf "%d computed, %d skipped, %d busy, %d reaped"
                      s.E.Sweep_store.computed s.E.Sweep_store.skipped
                      s.E.Sweep_store.busy s.E.Sweep_store.reaped
                | None -> "no stats file"
              in
              Printf.printf "sweep: worker %d (pid %d) %s in %.1fs: %s\n%!"
                r.E.Sweep_workers.r_index r.E.Sweep_workers.r_pid status
                r.E.Sweep_workers.r_seconds counts)
            summary.E.Sweep_workers.workers;
          if summary.E.Sweep_workers.crashed > 0 then
            Printf.printf
              "sweep: %d worker(s) crashed; %d leftover claim(s) reaped — the merge pass \
               below recomputes whatever they left unfinished\n%!"
              summary.E.Sweep_workers.crashed summary.E.Sweep_workers.claims_reaped;
          E.Sweep_store.reset_stats ()
        end;
        (* The canonical pass: with workers it loads what they computed
           and fills any holes; alone it is the whole sweep. *)
        run_ids config ids;
        print_stats ~label:(Printf.sprintf "sweep store %s" dir) (E.Sweep_store.stats ())
  in
  let term = Term.(const run $ ids_arg $ resume_arg $ full_arg $ traces_arg $ workers_arg) in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run experiments against a resumable checkpoint store: interrupt freely, re-run \
          with the same $(b,--resume) directory, and only incomplete units are recomputed.")
    term

let () =
  (* Arm the periodic metrics sampler / exit-time exposition when
     CKPT_METRICS_INTERVAL or CKPT_METRICS_OUT asks for it; a no-op
     otherwise. *)
  T.Metrics_export.ensure_sampler ();
  let doc = "Checkpointing strategies for parallel jobs (Bougeret et al., SC'11 reproduction)" in
  let info = Cmd.info "ckpt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            period_cmd; simulate_cmd; schedule_cmd; mtbf_cmd; waste_cmd; trace_cmd;
            explain_cmd; stats_cmd; trace_stats_cmd; gen_log_cmd; fit_log_cmd; experiment_cmd;
            sweep_cmd; sched_report_cmd; bench_cmd;
          ]))
